package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/mapped"
	"repro/internal/ustring"
)

// queryGrid runs the full Search/SearchHits/SearchTopK/SearchCount grid
// against both backends and fails on any bit-level divergence — the
// equivalence contract exact backends share, here used to prove the
// format-4 load paths (heap views and mmap views) reproduce the built
// index exactly.
func queryGrid(t *testing.T, s *ustring.String, want, got Backend, label string) {
	t.Helper()
	if got.TauMin() != want.TauMin() {
		t.Fatalf("%s: tauMin %v, want %v", label, got.TauMin(), want.TauMin())
	}
	for _, m := range []int{2, 3, 5, 8, 13} {
		for _, p := range gen.Patterns(s, 6, m, 419) {
			for _, tau := range []float64{0.1, 0.2, 0.4, 0.8} {
				a, errA := want.Search(p, tau)
				b, errB := got.Search(p, tau)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("%s: Search(%q, %v) err %v vs %v", label, p, tau, errA, errB)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%s: Search(%q, %v) = %v, want %v", label, p, tau, b, a)
				}
				ca, _ := want.SearchCount(p, tau)
				cb, _ := got.SearchCount(p, tau)
				if ca != cb {
					t.Fatalf("%s: SearchCount(%q, %v) = %d, want %d", label, p, tau, cb, ca)
				}
				ha, _ := want.SearchHits(p, tau)
				hb, _ := got.SearchHits(p, tau)
				if !reflect.DeepEqual(ha, hb) {
					t.Fatalf("%s: SearchHits(%q, %v) diverges", label, p, tau)
				}
			}
			for _, k := range []int{1, 3, 10} {
				ka, _ := want.SearchTopK(p, k)
				kb, _ := got.SearchTopK(p, k)
				if !reflect.DeepEqual(ka, kb) {
					t.Fatalf("%s: SearchTopK(%q, %d) diverges", label, p, k)
				}
			}
		}
	}
}

func TestFormat4Equivalence(t *testing.T) {
	s := gen.Single(gen.Config{N: 3000, Theta: 0.3, Seed: 409})
	built, err := BuildCompressed(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	n, err := built.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	if !mapped.IsEnvelope(buf.Bytes()) {
		t.Fatal("compressed WriteTo did not produce a format-4 envelope")
	}
	path := filepath.Join(t.TempDir(), "doc.idx")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	t.Run("stream heap load", func(t *testing.T) {
		got, err := ReadBackend(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadBackend: %v", err)
		}
		queryGrid(t, s, built, got, "stream")
		if !reflect.DeepEqual(got.Source(), s) {
			t.Error("stream-loaded source diverges from original")
		}
	})

	t.Run("file heap load", func(t *testing.T) {
		got, skipped, err := OpenBackendFile(path, false)
		if err != nil {
			t.Fatalf("OpenBackendFile: %v", err)
		}
		if !skipped {
			t.Error("format-4 file load did not report a decode skip")
		}
		queryGrid(t, s, built, got, "file-heap")
	})

	t.Run("file mmap load", func(t *testing.T) {
		got, skipped, err := OpenBackendFile(path, true)
		if err != nil {
			t.Fatalf("OpenBackendFile mmap: %v", err)
		}
		if !skipped {
			t.Error("mmap load did not report a decode skip")
		}
		if mapped.Available() && BackendMappedBytes(got) != int64(buf.Len()) {
			t.Errorf("BackendMappedBytes = %d, want %d", BackendMappedBytes(got), buf.Len())
		}
		queryGrid(t, s, built, got, "mmap")
		// Lazy source: materialises on demand and matches the original.
		if SourceLen(got) != s.Len() {
			t.Errorf("SourceLen = %d, want %d", SourceLen(got), s.Len())
		}
		if !reflect.DeepEqual(got.Source(), s) {
			t.Error("mmap-loaded source diverges from original")
		}
		// Round trip again out of the mapped index: byte-identical copy.
		var again bytes.Buffer
		if _, err := got.(*CompressedIndex).WriteTo(&again); err != nil {
			t.Fatalf("re-save of mapped index: %v", err)
		}
		if !bytes.Equal(again.Bytes(), buf.Bytes()) {
			t.Error("re-saved mapped envelope is not byte-identical")
		}
		if err := CloseBackend(got); err != nil {
			t.Fatalf("CloseBackend: %v", err)
		}
	})
}

func TestFormat4CorrelatedEquivalence(t *testing.T) {
	s := &ustring.String{
		Pos: []ustring.Position{
			{{Char: 'e', Prob: .6}, {Char: 'f', Prob: .4}},
			{{Char: 'q', Prob: 1}},
			{{Char: 'z', Prob: .3}, {Char: 'w', Prob: .7}},
		},
		Corr: []ustring.Correlation{{
			At: 2, Char: 'z', DepAt: 0, DepChar: 'e',
			ProbWhenPresent: .9, ProbWhenAbsent: .05,
		}},
	}
	built, err := BuildCompressed(s, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := built.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corr.idx")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err := OpenBackendFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := built.Search([]byte("eqz"), 0.5)
	b, err := got.Search([]byte("eqz"), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(b, []int{0}) {
		t.Errorf("correlated search over mmap = %v, want %v", b, a)
	}
	if !reflect.DeepEqual(got.Source(), s) {
		t.Error("correlated source diverges after envelope round trip")
	}
}

// TestFormat4Hostile drives ReadBackend over truncations and bit flips of
// a real envelope: every outcome must be a typed error or a clean load —
// never a panic, never an oversized allocation.
func TestFormat4Hostile(t *testing.T) {
	s := gen.Single(gen.Config{N: 400, Theta: 0.3, Seed: 431})
	built, err := BuildCompressed(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := built.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	check := func(t *testing.T, data []byte) {
		t.Helper()
		b, err := ReadBackend(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorruptIndex) && !errors.Is(err, ErrUnsupportedFormat) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		// Mutation landed in padding (not covered by checksums): the load
		// must still answer queries without panicking.
		if _, err := b.Search([]byte("ab"), 0.2); err != nil {
			t.Fatalf("loaded index cannot query: %v", err)
		}
	}

	t.Run("truncations", func(t *testing.T) {
		for _, cut := range []int{0, 1, 7, 8, 31, 32, 33, 100, len(raw) / 2, len(raw) - 1} {
			if cut > len(raw) {
				continue
			}
			check(t, raw[:cut])
		}
	})
	t.Run("bit flips", func(t *testing.T) {
		step := len(raw)/97 + 1
		for off := 0; off < len(raw); off += step {
			data := append([]byte(nil), raw...)
			data[off] ^= 0x40
			check(t, data)
		}
	})
	t.Run("region table zeroed", func(t *testing.T) {
		data := append([]byte(nil), raw...)
		for i := 32; i < 32+24; i++ {
			data[i] = 0
		}
		check(t, data)
	})
}

func FuzzReadBackend(f *testing.F) {
	s := gen.Single(gen.Config{N: 150, Theta: 0.3, Seed: 443})
	cx, err := BuildCompressed(s, 0.1)
	if err != nil {
		f.Fatal(err)
	}
	var env bytes.Buffer
	if _, err := cx.WriteTo(&env); err != nil {
		f.Fatal(err)
	}
	f.Add(env.Bytes())
	f.Add(env.Bytes()[:env.Len()/2])
	px, err := Build(s, 0.1)
	if err != nil {
		f.Fatal(err)
	}
	var gobBuf bytes.Buffer
	if _, err := px.WriteTo(&gobBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(gobBuf.Bytes())
	f.Add([]byte(mapped.Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ReadBackend(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A load that passed full validation must be queryable.
		if _, err := b.Search([]byte("ab"), 0.5); err != nil {
			t.Fatalf("fuzzed index cannot query: %v", err)
		}
		_, _ = b.SearchCount([]byte("a"), 0.9)
		_ = CloseBackend(b)
	})
}
