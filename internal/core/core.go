package core
