package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
)

// Semantic property tests (testing/quick) on the query invariants that hold
// for any uncertain string and pattern.

// Property: answers are monotone in τ — raising the threshold can only
// shrink the result set, and every surviving position appears at every lower
// threshold.
func TestPropertyMonotoneInTau(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := gen.Single(gen.Config{N: 300 + rng.Intn(500), Theta: 0.2 + 0.4*rng.Float64(), Seed: seed})
		ix, err := Build(s, 0.1)
		if err != nil {
			return false
		}
		p := gen.Patterns(s, 1, 1+rng.Intn(6), seed+1)[0]
		taus := []float64{0.1, 0.15, 0.25, 0.4, 0.7}
		var prev map[int]bool
		for _, tau := range taus {
			got, err := ix.Search(p, tau)
			if err != nil {
				return false
			}
			cur := map[int]bool{}
			for _, pos := range got {
				cur[pos] = true
			}
			if prev != nil {
				// prev is the lower threshold: cur ⊆ prev.
				for pos := range cur {
					if !prev[pos] {
						t.Logf("position %d at tau=%v missing at lower tau", pos, tau)
						return false
					}
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: extending the pattern can only shrink the match set — every
// occurrence of p+c above τ is an occurrence of p above τ at the same
// position.
func TestPropertyPatternExtensionShrinks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := gen.Single(gen.Config{N: 300 + rng.Intn(500), Theta: 0.3, Seed: seed})
		ix, err := Build(s, 0.1)
		if err != nil {
			return false
		}
		long := gen.Patterns(s, 1, 2+rng.Intn(6), seed+2)[0]
		short := long[:len(long)-1]
		tau := 0.15
		longSet, err := ix.Search(long, tau)
		if err != nil {
			return false
		}
		shortGot, err := ix.Search(short, tau)
		if err != nil {
			return false
		}
		shortSet := map[int]bool{}
		for _, pos := range shortGot {
			shortSet[pos] = true
		}
		for _, pos := range longSet {
			if !shortSet[pos] {
				t.Logf("extension gained position %d", pos)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: τmin is query-invisible — indexes built at different τmin agree
// on every τ both support.
func TestPropertyTauMinInvisible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := gen.Single(gen.Config{N: 200 + rng.Intn(400), Theta: 0.4, Seed: seed})
		loose, err := Build(s, 0.05)
		if err != nil {
			return false
		}
		tight, err := Build(s, 0.15)
		if err != nil {
			return false
		}
		p := gen.Patterns(s, 1, 1+rng.Intn(5), seed+3)[0]
		for _, tau := range []float64{0.15, 0.3, 0.6} {
			a, err := loose.Search(p, tau)
			if err != nil {
				return false
			}
			b, err := tight.Search(p, tau)
			if err != nil {
				return false
			}
			if !equalIntSlices(a, b) {
				t.Logf("tauMin leak: %v vs %v at tau=%v", a, b, tau)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: reported probabilities are insensitive to unrelated positions —
// perturbing the string far from a match does not change its probability.
func TestPropertyLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(509))
	s := gen.Single(gen.Config{N: 1000, Theta: 0.3, Seed: 521})
	ix, err := Build(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	p := gen.Patterns(s, 1, 4, 523)[0]
	hits, err := ix.SearchHits(p, 0.1)
	if err != nil || len(hits) == 0 {
		t.Skip("no hits to test locality on")
	}
	// Perturb a position at least 10 away from every hit window.
	perturb := -1
	for trial := 0; trial < 100; trial++ {
		cand := rng.Intn(s.Len())
		farFromAll := true
		for _, h := range hits {
			if cand >= int(h.Orig)-10 && cand <= int(h.Orig)+len(p)+10 {
				farFromAll = false
				break
			}
		}
		if farFromAll {
			perturb = cand
			break
		}
	}
	if perturb < 0 {
		t.Skip("string too dense with hits")
	}
	mod := s.Clone()
	mod.Pos[perturb] = mod.Pos[perturb][:1]
	mod.Pos[perturb][0].Prob = 1
	ix2, err := Build(mod, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	hits2, err := ix2.SearchHits(p, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	probs := map[int32]float64{}
	for _, h := range hits2 {
		probs[h.Orig] = h.LogProb
	}
	for _, h := range hits {
		if lp, ok := probs[h.Orig]; !ok || lp != h.LogProb {
			t.Fatalf("perturbing position %d changed hit at %d", perturb, h.Orig)
		}
	}
}
