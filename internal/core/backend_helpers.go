package core

import "io"

// SourceLen returns b's source position count without forcing a
// lazily-loaded source (an envelope-opened compressed index) to
// materialise. Callers that only need the count — catalog stats, ingest
// publication — must use this instead of b.Source().Len().
func SourceLen(b Backend) int {
	if sl, ok := b.(interface{ SourceLen() int }); ok {
		return sl.SourceLen()
	}
	return b.Source().Len()
}

// BackendMappedBytes reports the bytes of mmap'd storage backing b, 0 for
// heap-resident backends.
func BackendMappedBytes(b Backend) int64 {
	if m, ok := b.(interface{ MappedBytes() int64 }); ok {
		return m.MappedBytes()
	}
	return 0
}

// CloseBackend releases any resources (an mmap'd envelope) held by b.
// Safe on every backend; heap-resident ones are a no-op. The caller must
// guarantee no concurrent or subsequent queries against b.
func CloseBackend(b Backend) error {
	if c, ok := b.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
