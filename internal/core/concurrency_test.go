package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/gen"
)

// TestParallelBuildIsDeterministic: the concurrent level construction must
// produce exactly the same index as any other run.
func TestParallelBuildIsDeterministic(t *testing.T) {
	s := gen.Single(gen.Config{N: 3000, Theta: 0.4, Seed: 401})
	a, err := Build(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{1, 3, 6, 12, 20} {
		for _, p := range gen.Patterns(s, 10, m, 409) {
			ha, err := a.SearchHits(p, 0.12)
			if err != nil {
				t.Fatal(err)
			}
			hb, err := b.SearchHits(p, 0.12)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ha, hb) {
				t.Fatalf("two builds disagree on %q", p)
			}
		}
	}
}

// TestConcurrentQueries: the index is immutable after Build, so arbitrary
// concurrent readers must be safe (run with -race) and agree with a serial
// baseline.
func TestConcurrentQueries(t *testing.T) {
	s := gen.Single(gen.Config{N: 5000, Theta: 0.3, Seed: 419})
	ix, err := Build(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	pats := gen.Patterns(s, 32, 5, 421)
	want := make([][]int, len(pats))
	for i, p := range pats {
		want[i], err = ix.Search(p, 0.15)
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				i := (w*7 + round) % len(pats)
				got, err := ix.Search(pats[i], 0.15)
				if err != nil {
					errs <- err
					return
				}
				if len(got) != len(want[i]) {
					errs <- errMismatch
					return
				}
				for k := range got {
					if got[k] != want[i][k] {
						errs <- errMismatch
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent query result mismatch" }
