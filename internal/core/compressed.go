package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/factor"
	"repro/internal/fm"
	"repro/internal/mapped"
	"repro/internal/prob"
	"repro/internal/ustring"
)

// CompressedIndex is the space-efficient backend: substring searching in a
// general uncertain string for any τ ≥ τmin, answered from a compressed
// representation of the Section 4/5 machinery. Where the plain Index keeps
// the explicit suffix array plus one RMQ level per pattern length, the
// compressed backend keeps only
//
//   - an FM-index over the transformed text (the wavelet-tree BWT of
//     internal/fm — the compressed suffix array of the paper's Section 8.7)
//     with a sampled suffix array for locating,
//   - the shared log-domain prefix sums (the C array), and
//   - the Pos array mapping text positions back to original positions.
//
// Queries retrieve the suffix range by backward search, then scan it:
// every entry is located through the LF walk, its window probability is
// computed from the same prefix sums the plain engine uses, and per-key
// keep-max dedup reproduces the duplicate-elimination bitmaps' effect. The
// probability arithmetic is identical float64 operations on identical
// inputs, so results are bit-identical to the plain backend's — at a query
// cost of O(m log σ + range·rate) instead of O(m + occ).
//
// The FM-index reserves byte 0xFF; a document whose transformed text uses it
// cannot be compressed and Build fails (the plain backend has no such
// limit). Patterns containing 0xFF simply never match, exactly as with the
// plain backend.
type CompressedIndex struct {
	src     *ustring.String
	tauMin  float64
	longCap int
	rate    int

	fm  *fm.Index
	pre *prob.Prefix
	pos []int32

	// Correlation support: corrAdjust reads the raw transformed text and
	// per-position log probabilities, so both are retained — but only when
	// the source declares correlations.
	t    []byte
	logp []float64
	corr func(xStart, length int) float64

	// Format-4 support. When the index was opened from a flat envelope the
	// query structures above are views into env's bytes (mmap'd or heap)
	// and the source string is materialised lazily on first Source() call —
	// queries never need it, so a mapped corpus stays near-zero resident
	// until asked for documents. srcLen is always valid without
	// materialising (see SourceLen).
	env     *mapped.Envelope
	srcLen  int
	srcOnce sync.Once
	srcFn   func() *ustring.String
}

// BuildCompressed transforms s with respect to tauMin (Lemma 2) and indexes
// the result compressedly. Queries support any τ ≥ tauMin and answer
// bit-identically to the plain Build.
func BuildCompressed(s *ustring.String, tauMin float64, opts ...Option) (*CompressedIndex, error) {
	var o buildOptions
	for _, opt := range opts {
		opt(&o)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid input string: %w", err)
	}
	tr, err := factor.Transform(s, tauMin)
	if err != nil {
		return nil, err
	}
	return newCompressed(s, tauMin, o.longCap, o.sampleRate, tr)
}

// newCompressed assembles the backend from a transformation (fresh or
// deserialised). Only T, LogP and Pos of tr are used; the transformation
// itself is not retained.
func newCompressed(s *ustring.String, tauMin float64, longCap, rate int, tr *factor.Transformed) (*CompressedIndex, error) {
	if rate <= 0 {
		rate = fm.DefaultSampleRate
	}
	fmx, err := fm.New(tr.T, rate)
	if err != nil {
		return nil, fmt.Errorf("core: compressed backend: %w", err)
	}
	cx := &CompressedIndex{
		src:     s,
		srcLen:  s.Len(),
		tauMin:  tauMin,
		longCap: longCap,
		rate:    rate,
		fm:      fmx,
		pre:     prob.NewPrefix(tr.LogP),
		pos:     tr.Pos,
	}
	if len(s.Corr) > 0 {
		cx.t = tr.T
		cx.logp = tr.LogP
		cx.corr = cx.corrAdjust
	}
	return cx, nil
}

// corrAdjust routes through the package's shared correlation-correction
// arithmetic (see index.go) over the retained arrays, keeping corrected
// probabilities bit-identical across backends by construction.
func (cx *CompressedIndex) corrAdjust(xStart, length int) float64 {
	return corrAdjust(cx.src, cx.t, cx.logp, cx.pos, xStart, length)
}

// windowLogProb is the corrected log probability of the length-m window at
// text position x — the compressed counterpart of Engine.rawCi, computed
// from the identical prefix sums.
func (cx *CompressedIndex) windowLogProb(x, m int) float64 {
	lp := cx.pre.Span(x, x+m)
	if lp == prob.LogZero {
		return prob.LogZero
	}
	if cx.corr != nil {
		lp += cx.corr(x, m)
	}
	return lp
}

// bestPerKey scans the suffix range of p and keeps, per dedup key (original
// position), the most probable window — ties resolved to the first entry in
// suffix-array order, exactly like the plain engine's duplicate bitmaps and
// scan paths. Results come back in no particular order; callers whose
// contract includes ordering sort (Count does not, and Search re-sorts by
// position anyway).
func (cx *CompressedIndex) bestPerKey(p []byte, st *QueryStats) []Hit {
	lo, hi, ok, steps := cx.fm.RangeCount(p)
	if !ok {
		st.add(0, int64(steps), int64(steps)*fmStepBytes)
		return nil
	}
	m := len(p)
	var hops int64
	best := make(map[int32]Hit)
	for j := lo; j <= hi; j++ {
		x, h := cx.fm.LocateCount(j)
		hops += int64(h)
		lp := cx.windowLogProb(int(x), m)
		if lp == prob.LogZero {
			continue
		}
		if int(x) >= len(cx.pos) {
			continue // only reachable over corrupt (unverified mapped) data
		}
		k := cx.pos[x]
		if k < 0 {
			continue // separator window; unreachable past the LogZero check
		}
		if prev, seen := best[k]; !seen || lp > prev.LogProb {
			best[k] = Hit{XPos: x, Orig: k, Key: k, LogProb: lp}
		}
	}
	scanned := int64(hi - lo + 1)
	st.add(scanned, int64(steps)+hops,
		int64(steps)*fmStepBytes+hops*fmHopBytes+scanned*fmCandidateBytes)
	out := make([]Hit, 0, len(best))
	for _, h := range best {
		out = append(out, h)
	}
	return out
}

// Search reports every starting position where p occurs with probability
// strictly greater than tau, in increasing position order (Problem 1).
func (cx *CompressedIndex) Search(p []byte, tau float64) ([]int, error) {
	if err := ValidateQuery(p, tau, cx.tauMin); err != nil {
		return nil, err
	}
	var out []int
	for _, h := range cx.bestPerKey(p, nil) {
		if prob.Greater(h.LogProb, tau) {
			out = append(out, int(h.Orig))
		}
	}
	if len(out) == 0 {
		return nil, nil
	}
	sort.Ints(out)
	return out, nil
}

// SearchHits is Search with per-occurrence probabilities, in decreasing
// probability order (ties by increasing position).
func (cx *CompressedIndex) SearchHits(p []byte, tau float64) ([]Hit, error) {
	return cx.SearchHitsCosted(p, tau, nil)
}

// SearchHitsCosted is SearchHits accumulating cost counters into st (nil
// records nothing).
func (cx *CompressedIndex) SearchHitsCosted(p []byte, tau float64, st *QueryStats) ([]Hit, error) {
	if err := ValidateQuery(p, tau, cx.tauMin); err != nil {
		return nil, err
	}
	var hits []Hit
	for _, h := range cx.bestPerKey(p, st) {
		if prob.Greater(h.LogProb, tau) {
			hits = append(hits, h)
		}
	}
	sortHitsByProb(hits)
	return hits, nil
}

// SearchTopK reports the k most probable occurrences of p under the
// canonical order (decreasing probability, ties by increasing position) —
// the same sequence the plain backend reports. All returned hits have
// probability ≥ tauMin.
func (cx *CompressedIndex) SearchTopK(p []byte, k int) ([]Hit, error) {
	return cx.SearchTopKCosted(p, k, nil)
}

// SearchTopKCosted is SearchTopK accumulating cost counters into st.
func (cx *CompressedIndex) SearchTopKCosted(p []byte, k int, st *QueryStats) ([]Hit, error) {
	if err := ValidateQuery(p, 1, 0); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, nil
	}
	hits := cx.bestPerKey(p, st)
	sortHitsByProb(hits)
	if len(hits) > k {
		hits = hits[:k]
	}
	if len(hits) == 0 {
		return nil, nil
	}
	return hits, nil
}

// SearchCount returns the number of occurrences of p with probability
// strictly greater than tau, without materialising positions.
func (cx *CompressedIndex) SearchCount(p []byte, tau float64) (int, error) {
	return cx.SearchCountCosted(p, tau, nil)
}

// SearchCountCosted is SearchCount accumulating cost counters into st.
func (cx *CompressedIndex) SearchCountCosted(p []byte, tau float64, st *QueryStats) (int, error) {
	if err := ValidateQuery(p, tau, cx.tauMin); err != nil {
		return 0, err
	}
	n := 0
	for _, h := range cx.bestPerKey(p, st) {
		if prob.Greater(h.LogProb, tau) {
			n++
		}
	}
	return n, nil
}

// TauMin returns the construction threshold.
func (cx *CompressedIndex) TauMin() float64 { return cx.tauMin }

// Source returns the indexed uncertain string. For an envelope-opened
// index the string is materialised from the stored per-position tables on
// first call (and retained); queries never trigger this, so serving a
// mapped corpus keeps the heap free of document data.
func (cx *CompressedIndex) Source() *ustring.String {
	if cx.srcFn != nil {
		cx.srcOnce.Do(func() { cx.src = cx.srcFn() })
	}
	return cx.src
}

// SourceLen returns the source string's position count without forcing a
// lazily-loaded source to materialise.
func (cx *CompressedIndex) SourceLen() int { return cx.srcLen }

// MappedBytes reports the bytes of mmap'd storage backing this index
// (0 for heap-resident indexes).
func (cx *CompressedIndex) MappedBytes() int64 {
	if cx.env != nil && cx.env.Mapped() {
		return cx.env.Size()
	}
	return 0
}

// Close releases the index's mapping, if any. The caller must guarantee
// no query is running or will run afterwards — the eviction paths that
// call this do so only after removing the index from serving and waiting
// out a grace period.
func (cx *CompressedIndex) Close() error { return cx.env.Close() }

// Kind reports BackendCompressed.
func (cx *CompressedIndex) Kind() string { return BackendCompressed }

// SampleRate returns the FM-index suffix-array sampling interval.
func (cx *CompressedIndex) SampleRate() int { return cx.rate }

// Space itemises the resident index memory in the plain backend's
// categories: the FM-index stands in for text+suffix array, the prefix sums
// are the probability array, and Pos (plus the correlation-support arrays,
// when retained) are the position bookkeeping. The RMQ-level categories are
// zero — the compressed backend has none.
func (cx *CompressedIndex) Space() SpaceBreakdown {
	return SpaceBreakdown{
		TextAndSA:  cx.fm.Bytes(),
		ProbArray:  cx.pre.Bytes(),
		PosAndKeys: len(cx.pos)*4 + len(cx.t) + len(cx.logp)*8,
	}
}

// Bytes is the total resident index footprint.
func (cx *CompressedIndex) Bytes() int { return cx.Space().Total() }
