package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/fm"
	"repro/internal/mapped"
	"repro/internal/prob"
	"repro/internal/rank"
	"repro/internal/ustring"
	"repro/internal/wavelet"
)

// Format 4 is the flat envelope (internal/mapped): instead of gob-encoding
// the source plus transformation and rebuilding every query structure on
// load, the compressed backend's structures themselves — wavelet-tree BWT
// levels, rank blocks, sampled suffix array, probability prefix sums, the
// Pos map — are written as 8-byte-aligned, checksummed regions that the
// query code addresses in place. Loading is O(regions), not O(corpus):
// from an mmap'd file no payload page is touched until a query faults it
// in. The source string is stored as flattened per-position tables and
// only materialised if someone asks for it (Source()).
//
// Formats 1–3 (gob) remain fully readable; WriteTo of the plain and
// approx backends still emits format 3 — their query structures are
// rebuilt from the transformation on load by design (see persist.go), so
// a flat envelope would buy them nothing until they too persist
// structures. ReadBackend dispatches on the envelope magic.

// Region tags of the compressed backend's format-4 envelope. Level tags
// are per wavelet level: tagLevelWords|d and tagLevelBlocks|d for level d.
const (
	tagMeta         = 0x4154454D // "META"
	tagCounts       = 0x53544E43 // cumulative symbol counts, []int32[258]
	tagAlphabet     = 0x48504C41 // wavelet alphabet, raw bytes
	tagSampledWords = 0x57504D53 // sampled-rows bit words, []uint64
	tagSampledBlks  = 0x42504D53 // sampled-rows block counts, []int32
	tagSamples      = 0x4C504D53 // sampled SA' values, []int32
	tagProbSums     = 0x4D555350 // prefix log-prob sums, []float64
	tagProbZeros    = 0x4F525A50 // prefix zero counts, []int32
	tagPos          = 0x2E534F50 // text position → source position, []int32
	tagSrcOffsets   = 0x46464F53 // source CSR offsets, []int32, len srcLen+1
	tagSrcChars     = 0x52484353 // source choice characters, raw bytes
	tagSrcProbs     = 0x52505353 // source choice probabilities, []float64
	tagCorr         = 0x52524F43 // gob []ustring.Correlation (only if any)
	tagT            = 0x2E545854 // transformed text (only with correlations)
	tagLogP         = 0x50474F4C // per-position log probs (only with correlations)
	tagLevelWords   = 0x4C570000 // | level
	tagLevelBlocks  = 0x4C420000 // | level
)

// metaSize is the fixed size of the tagMeta region.
const metaSize = 64

// envelope meta kinds.
const metaKindCompressed = 1

const metaFlagCorr = 1 // source declares correlations

// Typed classes for envelope/payload validation failures; ReadBackend and
// OpenBackendFile wrap every corruption report in ErrCorruptIndex so
// callers can errors.Is against the class regardless of format.
var (
	ErrCorruptIndex      = errors.New("core: corrupt index payload")
	ErrUnsupportedFormat = errors.New("core: unsupported index format")
)

// envelopeMeta is the decoded tagMeta region.
type envelopeMeta struct {
	kind    uint32
	flags   uint32
	tauMin  float64
	longCap int
	rate    int
	n       int // transformed text length
	srcLen  int // source position count
	depth   int // wavelet levels
}

func (m envelopeMeta) encode() []byte {
	b := make([]byte, metaSize)
	binary.LittleEndian.PutUint32(b[0:], 1) // meta version
	binary.LittleEndian.PutUint32(b[4:], m.kind)
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(m.tauMin))
	binary.LittleEndian.PutUint64(b[16:], uint64(int64(m.longCap)))
	binary.LittleEndian.PutUint64(b[24:], uint64(int64(m.rate)))
	binary.LittleEndian.PutUint64(b[32:], uint64(int64(m.n)))
	binary.LittleEndian.PutUint64(b[40:], uint64(int64(m.srcLen)))
	binary.LittleEndian.PutUint32(b[48:], uint32(m.depth))
	binary.LittleEndian.PutUint32(b[52:], m.flags)
	return b
}

func decodeMeta(b []byte) (envelopeMeta, error) {
	var m envelopeMeta
	if len(b) != metaSize {
		return m, fmt.Errorf("%w: meta region is %d bytes, want %d", ErrCorruptIndex, len(b), metaSize)
	}
	if v := binary.LittleEndian.Uint32(b[0:]); v != 1 {
		return m, fmt.Errorf("%w: envelope meta version %d", ErrUnsupportedFormat, v)
	}
	m.kind = binary.LittleEndian.Uint32(b[4:])
	m.tauMin = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	m.longCap = int(int64(binary.LittleEndian.Uint64(b[16:])))
	m.rate = int(int64(binary.LittleEndian.Uint64(b[24:])))
	m.n = int(int64(binary.LittleEndian.Uint64(b[32:])))
	m.srcLen = int(int64(binary.LittleEndian.Uint64(b[40:])))
	m.depth = int(binary.LittleEndian.Uint32(b[48:]))
	m.flags = binary.LittleEndian.Uint32(b[52:])
	if m.n < 0 || m.srcLen < 0 || m.depth < 0 || m.depth > 8 || m.rate < 1 || m.longCap < 0 {
		return m, fmt.Errorf("%w: envelope meta out of range (n=%d srcLen=%d depth=%d rate=%d longCap=%d)",
			ErrCorruptIndex, m.n, m.srcLen, m.depth, m.rate, m.longCap)
	}
	if !(m.tauMin >= 0 && m.tauMin <= 1) {
		return m, fmt.Errorf("%w: envelope tauMin %v outside [0,1]", ErrCorruptIndex, m.tauMin)
	}
	return m, nil
}

// WriteTo serialises the compressed index as a format-4 flat envelope.
// Unlike the former gob format this persists the query structures
// directly — no transformation re-run on save, no suffix-array rebuild on
// load. An index that was itself opened from an envelope round-trips as a
// byte copy of its backing envelope.
func (cx *CompressedIndex) WriteTo(w io.Writer) (int64, error) {
	if cx.env != nil {
		n, err := w.Write(cx.env.Bytes())
		return int64(n), err
	}
	var b mapped.Builder
	meta := envelopeMeta{
		kind:    metaKindCompressed,
		tauMin:  cx.tauMin,
		longCap: cx.longCap,
		rate:    cx.rate,
		n:       cx.fm.Len(),
		srcLen:  cx.srcLen,
		depth:   len(cx.fm.BWT().Levels()),
	}
	src := cx.Source()
	if len(src.Corr) > 0 {
		meta.flags |= metaFlagCorr
	}
	b.Add(tagMeta, meta.encode())
	b.AddI32s(tagCounts, cx.fm.Counts())
	b.Add(tagAlphabet, cx.fm.BWT().Alphabet())
	for d, lv := range cx.fm.BWT().Levels() {
		b.AddU64s(tagLevelWords|uint32(d), lv.Words())
		b.AddI32s(tagLevelBlocks|uint32(d), lv.BlockCounts())
	}
	b.AddU64s(tagSampledWords, cx.fm.SampledRows().Words())
	b.AddI32s(tagSampledBlks, cx.fm.SampledRows().BlockCounts())
	b.AddI32s(tagSamples, cx.fm.Samples())
	b.AddF64s(tagProbSums, cx.pre.Sums())
	b.AddI32s(tagProbZeros, cx.pre.ZeroUpTo())
	b.AddI32s(tagPos, cx.pos)

	// Source string as CSR: one offset per position, flattened choices.
	offsets := make([]int32, src.Len()+1)
	total := 0
	for i, pos := range src.Pos {
		offsets[i] = int32(total)
		total += len(pos)
	}
	offsets[src.Len()] = int32(total)
	chars := make([]byte, total)
	probs := make([]float64, total)
	k := 0
	for _, pos := range src.Pos {
		for _, c := range pos {
			chars[k], probs[k] = c.Char, c.Prob
			k++
		}
	}
	b.AddI32s(tagSrcOffsets, offsets)
	b.Add(tagSrcChars, chars)
	b.AddF64s(tagSrcProbs, probs)

	if len(src.Corr) > 0 {
		var cb bytes.Buffer
		if err := gob.NewEncoder(&cb).Encode(src.Corr); err != nil {
			return 0, fmt.Errorf("core: persisting correlations: %w", err)
		}
		b.Add(tagCorr, cb.Bytes())
		b.Add(tagT, cx.t)
		b.AddF64s(tagLogP, cx.logp)
	}
	return b.WriteTo(w)
}

// requireRegion fetches a mandatory region.
func requireRegion(env *mapped.Envelope, tag uint32, name string) ([]byte, error) {
	r, ok := env.Region(tag)
	if !ok {
		return nil, fmt.Errorf("%w: missing %s region", ErrCorruptIndex, name)
	}
	return r, nil
}

func regionI32s(env *mapped.Envelope, tag uint32, name string) ([]int32, error) {
	r, err := requireRegion(env, tag, name)
	if err != nil {
		return nil, err
	}
	v, err := mapped.I32s(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %s region: %w", ErrCorruptIndex, name, err)
	}
	return v, nil
}

func regionU64s(env *mapped.Envelope, tag uint32, name string) ([]uint64, error) {
	r, err := requireRegion(env, tag, name)
	if err != nil {
		return nil, err
	}
	v, err := mapped.U64s(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %s region: %w", ErrCorruptIndex, name, err)
	}
	return v, nil
}

func regionF64s(env *mapped.Envelope, tag uint32, name string) ([]float64, error) {
	r, err := requireRegion(env, tag, name)
	if err != nil {
		return nil, err
	}
	v, err := mapped.F64s(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %s region: %w", ErrCorruptIndex, name, err)
	}
	return v, nil
}

// backendFromEnvelope reassembles a backend over an opened envelope. The
// structures are views into env's bytes — zero copy — so env must stay
// open for the backend's lifetime; the returned index owns it and Close
// releases it.
//
// eager controls source handling: the stream path (ReadBackend) has the
// whole payload on heap anyway and preserves the historical contract of
// validating the source before returning; the mmap fast path defers
// materialisation so no payload page is faulted.
func backendFromEnvelope(env *mapped.Envelope, eager bool) (Backend, error) {
	metaRegion, err := requireRegion(env, tagMeta, "meta")
	if err != nil {
		return nil, err
	}
	meta, err := decodeMeta(metaRegion)
	if err != nil {
		return nil, err
	}
	if meta.kind != metaKindCompressed {
		return nil, fmt.Errorf("%w: envelope backend kind %d", ErrUnsupportedFormat, meta.kind)
	}

	counts, err := regionI32s(env, tagCounts, "counts")
	if err != nil {
		return nil, err
	}
	alphabet, err := requireRegion(env, tagAlphabet, "alphabet")
	if err != nil {
		return nil, err
	}
	levels := make([]*rank.Bits, meta.depth)
	for d := 0; d < meta.depth; d++ {
		words, err := regionU64s(env, tagLevelWords|uint32(d), fmt.Sprintf("level %d words", d))
		if err != nil {
			return nil, err
		}
		blocks, err := regionI32s(env, tagLevelBlocks|uint32(d), fmt.Sprintf("level %d blocks", d))
		if err != nil {
			return nil, err
		}
		if levels[d], err = rank.FromParts(words, blocks, meta.n+1); err != nil {
			return nil, fmt.Errorf("%w: level %d: %w", ErrCorruptIndex, d, err)
		}
	}
	bwt, err := wavelet.FromParts(meta.n+1, alphabet, levels)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorruptIndex, err)
	}

	sampledWords, err := regionU64s(env, tagSampledWords, "sampled words")
	if err != nil {
		return nil, err
	}
	sampledBlks, err := regionI32s(env, tagSampledBlks, "sampled blocks")
	if err != nil {
		return nil, err
	}
	sampled, err := rank.FromParts(sampledWords, sampledBlks, meta.n+1)
	if err != nil {
		return nil, fmt.Errorf("%w: sampled rows: %w", ErrCorruptIndex, err)
	}
	samples, err := regionI32s(env, tagSamples, "samples")
	if err != nil {
		return nil, err
	}
	fmx, err := fm.FromParts(bwt, counts, sampled, samples, meta.rate, meta.n)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorruptIndex, err)
	}

	sums, err := regionF64s(env, tagProbSums, "prob sums")
	if err != nil {
		return nil, err
	}
	zeros, err := regionI32s(env, tagProbZeros, "prob zeros")
	if err != nil {
		return nil, err
	}
	pre, err := prob.PrefixFromParts(sums, zeros)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorruptIndex, err)
	}
	if pre.Len() != meta.n {
		return nil, fmt.Errorf("%w: prefix covers %d positions, text has %d", ErrCorruptIndex, pre.Len(), meta.n)
	}
	pos, err := regionI32s(env, tagPos, "pos")
	if err != nil {
		return nil, err
	}
	if len(pos) != meta.n {
		return nil, fmt.Errorf("%w: pos table has %d entries, text has %d", ErrCorruptIndex, len(pos), meta.n)
	}

	offsets, err := regionI32s(env, tagSrcOffsets, "source offsets")
	if err != nil {
		return nil, err
	}
	chars, err := requireRegion(env, tagSrcChars, "source chars")
	if err != nil {
		return nil, err
	}
	probs, err := regionF64s(env, tagSrcProbs, "source probs")
	if err != nil {
		return nil, err
	}
	if len(offsets) != meta.srcLen+1 {
		return nil, fmt.Errorf("%w: source offsets has %d entries, want %d", ErrCorruptIndex, len(offsets), meta.srcLen+1)
	}
	if len(probs) != len(chars) {
		return nil, fmt.Errorf("%w: %d source chars but %d probabilities", ErrCorruptIndex, len(chars), len(probs))
	}

	var corr []ustring.Correlation
	hasCorr := meta.flags&metaFlagCorr != 0
	if hasCorr {
		cr, err := requireRegion(env, tagCorr, "correlations")
		if err != nil {
			return nil, err
		}
		if err := gob.NewDecoder(bytes.NewReader(cr)).Decode(&corr); err != nil {
			return nil, fmt.Errorf("%w: correlations: %v", ErrCorruptIndex, err)
		}
	}

	cx := &CompressedIndex{
		tauMin:  meta.tauMin,
		longCap: meta.longCap,
		rate:    meta.rate,
		fm:      fmx,
		pre:     pre,
		pos:     pos,
		env:     env,
		srcLen:  meta.srcLen,
	}
	cx.srcFn = func() *ustring.String {
		return materializeSource(offsets, chars, probs, corr)
	}
	if hasCorr {
		// Correlation correction reads the source and the raw transformed
		// arrays on the query path, so they are resident, not lazy.
		t, err := requireRegion(env, tagT, "transformed text")
		if err != nil {
			return nil, err
		}
		logp, err := regionF64s(env, tagLogP, "log probabilities")
		if err != nil {
			return nil, err
		}
		if len(t) != meta.n || len(logp) != meta.n {
			return nil, fmt.Errorf("%w: correlation arrays T=%d LogP=%d, text has %d", ErrCorruptIndex, len(t), len(logp), meta.n)
		}
		cx.t = t
		cx.logp = logp
		cx.corr = cx.corrAdjust
		cx.Source() // force materialisation; corrAdjust needs cx.src
	}
	if eager {
		src := cx.Source()
		if err := src.Validate(); err != nil {
			return nil, fmt.Errorf("%w: persisted source invalid: %v", ErrCorruptIndex, err)
		}
		if src.Len() != meta.srcLen {
			return nil, fmt.Errorf("%w: source has %d positions, meta says %d", ErrCorruptIndex, src.Len(), meta.srcLen)
		}
	}
	return cx, nil
}

// materializeSource rebuilds the uncertain string from its CSR regions.
// Offsets are range-clamped rather than trusted: over corrupt unverified
// data this yields a wrong string, never a panic.
func materializeSource(offsets []int32, chars []byte, probs []float64, corr []ustring.Correlation) *ustring.String {
	n := len(offsets) - 1
	s := &ustring.String{Corr: corr}
	if n <= 0 {
		return s
	}
	s.Pos = make([]ustring.Position, n)
	total := len(chars)
	for i := 0; i < n; i++ {
		a, b := int(offsets[i]), int(offsets[i+1])
		if a < 0 || b < a || b > total {
			continue
		}
		pos := make(ustring.Position, b-a)
		for k := a; k < b; k++ {
			pos[k-a] = ustring.Choice{Char: chars[k], Prob: probs[k]}
		}
		s.Pos[i] = pos
	}
	return s
}

// OpenBackendFile opens an index file with the zero-copy fast path: a
// format-4 envelope is validated structurally (O(regions)) and its query
// structures are addressed in place — mmap'd when useMmap is set and the
// platform supports it, a heap buffer otherwise. Older gob files fall
// back to the streaming ReadBackend path. skippedDecode reports whether
// the envelope fast path was taken (no gob decode, no structure rebuild);
// the catalog counts these for /v1/stats.
func OpenBackendFile(path string, useMmap bool) (b Backend, skippedDecode bool, err error) {
	if useMmap {
		env, err := mapped.OpenFile(path)
		if err == nil {
			bk, berr := backendFromEnvelope(env, false)
			if berr != nil {
				env.Close()
				return nil, false, fmt.Errorf("%w: %w", ErrCorruptIndex, berr)
			}
			return bk, true, nil
		}
		if !errors.Is(err, mapped.ErrBadMagic) {
			if _, statErr := os.Stat(path); statErr != nil {
				return nil, false, statErr
			}
			return nil, false, fmt.Errorf("%w: %w", ErrCorruptIndex, err)
		}
		// Not an envelope: an older gob cache file; stream-decode it.
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	prefix := make([]byte, len(mapped.Magic))
	if n, _ := io.ReadFull(f, prefix); n == len(prefix) && mapped.IsEnvelope(prefix) {
		skippedDecode = true
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, false, err
	}
	bk, err := ReadBackend(f)
	if err != nil {
		return nil, false, err
	}
	return bk, skippedDecode, nil
}
