package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/ustring"
)

func TestPersistRoundTrip(t *testing.T) {
	s := gen.Single(gen.Config{N: 2000, Theta: 0.3, Seed: 277})
	ix, err := Build(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	back, err := ReadIndex(&buf)
	if err != nil {
		t.Fatalf("ReadIndex: %v", err)
	}
	if back.TauMin() != ix.TauMin() {
		t.Errorf("tauMin %v != %v", back.TauMin(), ix.TauMin())
	}
	for _, m := range []int{2, 4, 8, 16} {
		for _, p := range gen.Patterns(s, 8, m, 281) {
			for _, tau := range []float64{0.1, 0.25} {
				a, err := ix.Search(p, tau)
				if err != nil {
					t.Fatal(err)
				}
				b, err := back.Search(p, tau)
				if err != nil {
					t.Fatal(err)
				}
				if !equalIntSlices(a, b) {
					t.Fatalf("round-tripped index diverges: %v vs %v (%q, τ=%v)", a, b, p, tau)
				}
			}
		}
	}
}

func TestPersistCorrelatedRoundTrip(t *testing.T) {
	s := &ustring.String{
		Pos: []ustring.Position{
			{{Char: 'e', Prob: .6}, {Char: 'f', Prob: .4}},
			{{Char: 'q', Prob: 1}},
			{{Char: 'z', Prob: .3}, {Char: 'w', Prob: .7}},
		},
		Corr: []ustring.Correlation{{
			At: 2, Char: 'z', DepAt: 0, DepChar: 'e',
			ProbWhenPresent: .9, ProbWhenAbsent: .05,
		}},
	}
	ix, err := Build(s, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Search([]byte("eqz"), 0.5) // needs the correlation hook
	if err != nil {
		t.Fatal(err)
	}
	if !equalIntSlices(got, []int{0}) {
		t.Errorf("correlated search after reload = %v, want [0]", got)
	}
}

func TestReadIndexErrors(t *testing.T) {
	if _, err := ReadIndex(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadIndex(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage input accepted")
	}
	// Truncated payload.
	s := gen.Single(gen.Config{N: 200, Theta: 0.3, Seed: 283})
	ix, err := Build(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadIndex(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated input accepted")
	}
}
