package core

import (
	"fmt"
	"sort"

	"repro/internal/factor"
	"repro/internal/prob"
	"repro/internal/ustring"
)

// Index is the paper's Section 5 index: substring searching in a general
// uncertain string for any query threshold τ ≥ τmin.
type Index struct {
	engine *Engine
	tr     *factor.Transformed
	src    *ustring.String
	tauMin float64
}

// Option configures Build.
type Option func(*buildOptions)

type buildOptions struct {
	longCap    int
	sampleRate int
}

// WithLongCap bounds the lengths covered by the long-pattern blocking
// scheme; longer patterns fall back to a range scan. The compressed backend
// has no blocking scheme and only records the value for persistence.
func WithLongCap(n int) Option {
	return func(o *buildOptions) { o.longCap = n }
}

// WithSampleRate sets the compressed backend's suffix-array sampling
// interval: smaller is faster to locate, larger is smaller in memory. The
// plain backend ignores it.
func WithSampleRate(n int) Option {
	return func(o *buildOptions) { o.sampleRate = n }
}

// Build transforms s with respect to tauMin (Lemma 2) and indexes the
// result. Queries support any τ ≥ tauMin.
func Build(s *ustring.String, tauMin float64, opts ...Option) (*Index, error) {
	var o buildOptions
	for _, opt := range opts {
		opt(&o)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid input string: %w", err)
	}
	tr, err := factor.Transform(s, tauMin)
	if err != nil {
		return nil, err
	}
	ix := &Index{tr: tr, src: s, tauMin: tauMin}
	var corr func(xStart, length int) float64
	if len(s.Corr) > 0 {
		corr = ix.corrAdjust
	}
	ix.engine = NewEngine(EngineConfig{
		T:         tr.T,
		LogP:      tr.LogP,
		Pos:       tr.Pos,
		Key:       tr.Pos, // dedup key = original position (Section 5.2)
		KeySpace:  s.Len(),
		Corr:      corr,
		LongCap:   o.longCap,
		MaxWindow: tr.MaxFactorLen,
	})
	return ix, nil
}

// corrAdjust returns the log-domain correction factor turning the base
// probability of the window starting at text position xStart into the
// correlation-corrected probability (Section 3.3 semantics; the Section 4.1
// divide-by-pr⁺-multiply-by-correct trick in log domain, generalised to base
// probabilities).
func (ix *Index) corrAdjust(xStart, length int) float64 {
	return corrAdjust(ix.src, ix.tr.T, ix.tr.LogP, ix.tr.Pos, xStart, length)
}

// corrAdjust is the shared correlation-correction arithmetic. Every backend
// routes through this one function so corrected probabilities stay in exact
// float-operation lockstep — the bit-identical-results guarantee depends on
// it.
func corrAdjust(src *ustring.String, t []byte, logp []float64, pos []int32, xStart, length int) float64 {
	s0 := int(pos[xStart])
	adj := 0.0
	for _, c := range src.Corr {
		if c.At < s0 || c.At >= s0+length {
			continue
		}
		xc := xStart + (c.At - s0)
		if t[xc] != c.Char {
			continue
		}
		var corrected float64
		if c.DepAt >= s0 && c.DepAt < s0+length {
			// Case 1: the partner position is inside the window.
			if t[xStart+(c.DepAt-s0)] == c.DepChar {
				corrected = c.ProbWhenPresent
			} else {
				corrected = c.ProbWhenAbsent
			}
		} else {
			// Case 2: partner outside; marginalise over its distribution.
			dp := src.ProbAt(c.DepAt, c.DepChar)
			if dp < 0 {
				dp = 0
			}
			corrected = dp*c.ProbWhenPresent + (1-dp)*c.ProbWhenAbsent
		}
		adj += prob.Log(corrected) - logp[xc]
	}
	return adj
}

// Search reports every starting position of s where p occurs with
// probability strictly greater than tau, in increasing position order
// (Problem 1). tau must satisfy tauMin ≤ tau ≤ 1.
func (ix *Index) Search(p []byte, tau float64) ([]int, error) {
	hits, err := ix.SearchHits(p, tau)
	if err != nil || len(hits) == 0 {
		return nil, err
	}
	out := make([]int, len(hits))
	for i, h := range hits {
		out[i] = int(h.Orig)
	}
	sort.Ints(out)
	return out, nil
}

// SearchHits is Search with per-occurrence probabilities, in decreasing
// probability order (the natural order of the recursive RMQ extraction).
func (ix *Index) SearchHits(p []byte, tau float64) ([]Hit, error) {
	return ix.SearchHitsCosted(p, tau, nil)
}

// SearchHitsCosted is SearchHits accumulating cost counters into st (nil
// records nothing).
func (ix *Index) SearchHitsCosted(p []byte, tau float64, st *QueryStats) ([]Hit, error) {
	if err := ValidateQuery(p, tau, ix.tauMin); err != nil {
		return nil, err
	}
	return ix.engine.QueryCosted(p, tau, st)
}

// SearchTopK reports the k most probable occurrences of p, in decreasing
// probability order (ties by increasing position). Because every transformed
// occurrence has probability at least tauMin, top-k below that mass may be
// incomplete; all returned hits satisfy probability ≥ tauMin.
func (ix *Index) SearchTopK(p []byte, k int) ([]Hit, error) {
	return ix.engine.TopK(p, k)
}

// SearchTopKCosted is SearchTopK accumulating cost counters into st.
func (ix *Index) SearchTopKCosted(p []byte, k int, st *QueryStats) ([]Hit, error) {
	return ix.engine.TopKCosted(p, k, st)
}

// SearchCount returns the number of occurrences of p with probability
// strictly greater than tau, without materialising positions.
func (ix *Index) SearchCount(p []byte, tau float64) (int, error) {
	return ix.SearchCountCosted(p, tau, nil)
}

// SearchCountCosted is SearchCount accumulating cost counters into st.
func (ix *Index) SearchCountCosted(p []byte, tau float64, st *QueryStats) (int, error) {
	if err := ValidateQuery(p, tau, ix.tauMin); err != nil {
		return 0, err
	}
	return ix.engine.CountCosted(p, tau, st)
}

// SearchIter streams occurrences of p above tau in decreasing probability
// order (unordered for patterns longer than log N) until visit returns
// false.
func (ix *Index) SearchIter(p []byte, tau float64, visit func(Hit) bool) error {
	if err := ValidateQuery(p, tau, ix.tauMin); err != nil {
		return err
	}
	return ix.engine.Iterate(p, tau, visit)
}

// TauMin returns the construction threshold.
func (ix *Index) TauMin() float64 { return ix.tauMin }

// Source returns the indexed uncertain string.
func (ix *Index) Source() *ustring.String { return ix.src }

// Transformed exposes the Lemma 2 transformation (used by tooling and
// examples to report expansion statistics).
func (ix *Index) Transformed() *factor.Transformed { return ix.tr }

// Engine exposes the underlying engine (used by the benchmarks' space
// accounting).
func (ix *Index) Engine() *Engine { return ix.engine }

// Space itemises index memory including the transformation arrays.
func (ix *Index) Space() SpaceBreakdown {
	s := ix.engine.Space()
	// Pos/SpanOf/LogP live in the transformation; the engine already counts
	// Pos (as its Key too) and C, so add only the factor bookkeeping.
	s.PosAndKeys += len(ix.tr.SpanOf)*4 + len(ix.tr.Spans)*16
	return s
}

// Bytes is the total index footprint.
func (ix *Index) Bytes() int { return ix.Space().Total() }
