package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/factor"
	"repro/internal/mapped"
	"repro/internal/ustring"
)

// Persistence format history:
//
//	1 — plain backend only; no Backend tag (decoded as BackendPlain).
//	2 — adds the Backend tag and the compressed backend's SampleRate.
//	3 — adds the approx backend and its Epsilon parameter.
//	4 — flat region envelope for the compressed backend (persist4.go):
//	    query structures stored as mmap-able aligned regions, no rebuild
//	    on load. Not gob; dispatched on the envelope magic.
//
// The exact backends persist the same payload — the source string plus the
// Lemma 2 transformation (the dominant construction cost at low τmin) — and
// rebuild their query structures on load: the plain backend its suffix
// array and RMQ levels, the compressed backend its BWT/wavelet machinery.
// The approx backend persists only the source and its (τmin, ε) parameters;
// its transformation and link structure are deterministic and rebuilt on
// load (retaining the transformation would cost more than the whole index).
// ReadBackend accepts every format up to persistFormat.
const persistFormat = 3

// persisted is the gob payload shared by every backend.
type persisted struct {
	Format  int
	Backend string // "" (format 1) means BackendPlain
	TauMin  float64
	LongCap int
	// SampleRate is the compressed backend's suffix-array sampling interval
	// (0 = default); unused by the other backends.
	SampleRate int
	// Epsilon is the approx backend's additive error bound; 0 elsewhere.
	Epsilon float64
	Source  *ustring.String
	// Tr is nil for the approx backend, which rebuilds its own
	// transformation from Source.
	Tr *factor.Transformed
}

// WriteTo serialises the index. The transformation is stored verbatim;
// loading rebuilds the suffix array and RMQ levels from it.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	return writePersisted(w, persisted{
		Format:  persistFormat,
		Backend: BackendPlain,
		TauMin:  ix.tauMin,
		LongCap: ix.engine.longCap,
		Source:  ix.src,
		Tr:      ix.tr,
	})
}

// WriteTo serialises the approximate backend: source string and the
// (τmin, ε) construction parameters. The transformation and ε-link
// structure are deterministic, so loading rebuilds them from the source.
func (ab *ApproxBackend) WriteTo(w io.Writer) (int64, error) {
	return writePersisted(w, persisted{
		Format:  persistFormat,
		Backend: BackendApprox,
		TauMin:  ab.TauMin(),
		Epsilon: ab.Epsilon(),
		Source:  ab.Source(),
	})
}

func writePersisted(w io.Writer, p persisted) (int64, error) {
	cw := &countingWriter{w: w}
	err := gob.NewEncoder(cw).Encode(p)
	return cw.n, err
}

// ReadBackend deserialises an index written by any backend's WriteTo. A
// format-4 envelope (compressed backend) is validated — structure, region
// checksums, source invariants — and its structures are assembled as
// views over the read buffer, no rebuild; gob formats 1–3 rebuild their
// query structures as before. A corrupted or truncated payload — bit
// flips, a short file, internally inconsistent arrays, hostile region
// tables — is reported as an error wrapping ErrCorruptIndex (or
// ErrUnsupportedFormat), never a panic and never an oversized allocation:
// every array length is cross-checked before use, and the gob rebuild
// runs under a recover so callers (the daemon's index cache) can fall
// back to rebuilding from source data.
func ReadBackend(r io.Reader) (b Backend, err error) {
	defer func() {
		if p := recover(); p != nil {
			b, err = nil, fmt.Errorf("%w: %v", ErrCorruptIndex, p)
		}
	}()
	br := bufio.NewReader(r)
	if magic, err := br.Peek(len(mapped.Magic)); err == nil && mapped.IsEnvelope(magic) {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading index: %w", err)
		}
		env, err := mapped.Open(data)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCorruptIndex, err)
		}
		// The whole payload is heap-resident already; verifying checksums
		// and the source costs one pass and preserves the historical
		// contract that ReadBackend never returns a corrupt index.
		if err := env.VerifyChecksums(); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCorruptIndex, err)
		}
		bk, err := backendFromEnvelope(env, true)
		if err != nil {
			return nil, err
		}
		return bk, nil
	}
	dec := gob.NewDecoder(br)
	var p persisted
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("%w: reading index: %v", ErrCorruptIndex, err)
	}
	if p.Format < 1 || p.Format > persistFormat {
		return nil, fmt.Errorf("%w: format %d (want 1..%d or a format-4 envelope)",
			ErrUnsupportedFormat, p.Format, persistFormat)
	}
	backend, err := ParseBackend(p.Backend)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorruptIndex, err)
	}
	if p.Source == nil {
		return nil, fmt.Errorf("%w: truncated payload", ErrCorruptIndex)
	}
	if err := p.Source.Validate(); err != nil {
		return nil, fmt.Errorf("%w: persisted source invalid: %w", ErrCorruptIndex, err)
	}
	if backend == BackendApprox {
		if !(p.Epsilon > 0 && p.Epsilon < 1) {
			return nil, fmt.Errorf("%w: approx epsilon %v outside (0, 1)", ErrCorruptIndex, p.Epsilon)
		}
		// The approx payload carries no transformation: the index rebuilds
		// its own (deterministically) from the validated source.
		return BuildApprox(p.Source, p.TauMin, p.Epsilon)
	}
	if p.Tr == nil {
		return nil, fmt.Errorf("%w: truncated payload", ErrCorruptIndex)
	}
	if err := checkTransformed(p.Tr, p.Source.Len()); err != nil {
		return nil, err
	}
	if backend == BackendCompressed {
		return newCompressed(p.Source, p.TauMin, p.LongCap, p.SampleRate, p.Tr)
	}
	ix := &Index{tr: p.Tr, src: p.Source, tauMin: p.TauMin}
	var corr func(xStart, length int) float64
	if len(p.Source.Corr) > 0 {
		corr = ix.corrAdjust
	}
	ix.engine = NewEngine(EngineConfig{
		T:         p.Tr.T,
		LogP:      p.Tr.LogP,
		Pos:       p.Tr.Pos,
		Key:       p.Tr.Pos,
		KeySpace:  p.Source.Len(),
		Corr:      corr,
		LongCap:   p.LongCap,
		MaxWindow: p.Tr.MaxFactorLen,
	})
	return ix, nil
}

// ReadIndex deserialises a plain index written by Index.WriteTo. Files
// holding a different backend are rejected; use ReadBackend to load any
// backend.
func ReadIndex(r io.Reader) (*Index, error) {
	b, err := ReadBackend(r)
	if err != nil {
		return nil, err
	}
	ix, ok := b.(*Index)
	if !ok {
		return nil, fmt.Errorf("core: index file holds the %q backend; load it with ReadBackend", b.Kind())
	}
	return ix, nil
}

// checkTransformed verifies the structural invariants of a decoded
// transformation: parallel arrays of one length, position maps inside the
// source string, span references inside the span list. Everything the
// engine rebuild indexes by must be proven in-bounds here.
func checkTransformed(tr *factor.Transformed, sourceLen int) error {
	n := len(tr.T)
	if len(tr.LogP) != n || len(tr.Pos) != n || len(tr.SpanOf) != n {
		return fmt.Errorf("%w: array lengths T=%d LogP=%d Pos=%d SpanOf=%d disagree",
			ErrCorruptIndex, n, len(tr.LogP), len(tr.Pos), len(tr.SpanOf))
	}
	if tr.MaxFactorLen < 0 || tr.MaxFactorLen > n {
		return fmt.Errorf("%w: MaxFactorLen %d outside [0, %d]", ErrCorruptIndex, tr.MaxFactorLen, n)
	}
	if tr.SourceLen != sourceLen {
		return fmt.Errorf("%w: SourceLen %d but source has %d positions", ErrCorruptIndex, tr.SourceLen, sourceLen)
	}
	for i := 0; i < n; i++ {
		if p := tr.Pos[i]; p < -1 || int(p) >= sourceLen {
			return fmt.Errorf("%w: Pos[%d] = %d outside source", ErrCorruptIndex, i, p)
		}
		if s := tr.SpanOf[i]; s < -1 || int(s) >= len(tr.Spans) {
			return fmt.Errorf("%w: SpanOf[%d] = %d outside span list", ErrCorruptIndex, i, s)
		}
	}
	return nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
