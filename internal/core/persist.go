package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/factor"
	"repro/internal/ustring"
)

// persistFormat tags the on-disk layout; bump on incompatible changes.
const persistFormat = 1

// persisted is the gob payload: the expensive-to-recompute transformation
// plus everything needed to rebuild the query structures. The RMQ levels and
// bitmaps are deterministic functions of the payload and cheaper to rebuild
// than to serialise (they are accessor-backed and mostly implicit).
type persisted struct {
	Format  int
	TauMin  float64
	LongCap int
	Source  *ustring.String
	Tr      *factor.Transformed
}

// WriteTo serialises the index. The transformation (the dominant
// construction cost at low τmin) is stored verbatim; ReadIndex rebuilds the
// suffix array and RMQ levels from it.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	enc := gob.NewEncoder(cw)
	err := enc.Encode(persisted{
		Format:  persistFormat,
		TauMin:  ix.tauMin,
		LongCap: ix.engine.longCap,
		Source:  ix.src,
		Tr:      ix.tr,
	})
	return cw.n, err
}

// ReadIndex deserialises an index written by WriteTo and rebuilds its query
// structures.
func ReadIndex(r io.Reader) (*Index, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var p persisted
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("core: reading index: %w", err)
	}
	if p.Format != persistFormat {
		return nil, fmt.Errorf("core: unsupported index format %d (want %d)", p.Format, persistFormat)
	}
	if p.Source == nil || p.Tr == nil {
		return nil, fmt.Errorf("core: truncated index payload")
	}
	if err := p.Source.Validate(); err != nil {
		return nil, fmt.Errorf("core: persisted source invalid: %w", err)
	}
	ix := &Index{tr: p.Tr, src: p.Source, tauMin: p.TauMin}
	var corr func(xStart, length int) float64
	if len(p.Source.Corr) > 0 {
		corr = ix.corrAdjust
	}
	ix.engine = NewEngine(EngineConfig{
		T:         p.Tr.T,
		LogP:      p.Tr.LogP,
		Pos:       p.Tr.Pos,
		Key:       p.Tr.Pos,
		KeySpace:  p.Source.Len(),
		Corr:      corr,
		LongCap:   p.LongCap,
		MaxWindow: p.Tr.MaxFactorLen,
	})
	return ix, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
