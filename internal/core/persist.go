package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/factor"
	"repro/internal/ustring"
)

// persistFormat tags the on-disk layout; bump on incompatible changes.
const persistFormat = 1

// persisted is the gob payload: the expensive-to-recompute transformation
// plus everything needed to rebuild the query structures. The RMQ levels and
// bitmaps are deterministic functions of the payload and cheaper to rebuild
// than to serialise (they are accessor-backed and mostly implicit).
type persisted struct {
	Format  int
	TauMin  float64
	LongCap int
	Source  *ustring.String
	Tr      *factor.Transformed
}

// WriteTo serialises the index. The transformation (the dominant
// construction cost at low τmin) is stored verbatim; ReadIndex rebuilds the
// suffix array and RMQ levels from it.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	enc := gob.NewEncoder(cw)
	err := enc.Encode(persisted{
		Format:  persistFormat,
		TauMin:  ix.tauMin,
		LongCap: ix.engine.longCap,
		Source:  ix.src,
		Tr:      ix.tr,
	})
	return cw.n, err
}

// ReadIndex deserialises an index written by WriteTo and rebuilds its query
// structures. A corrupted or truncated payload — bit flips surviving gob's
// framing, a short file, internally inconsistent arrays — is reported as an
// error, never a panic: the decoded transformation is cross-checked before
// any query structure is rebuilt, and the rebuild itself runs under a
// recover so callers (the daemon's index cache) can fall back to rebuilding
// from source data.
func ReadIndex(r io.Reader) (ix *Index, err error) {
	defer func() {
		if p := recover(); p != nil {
			ix, err = nil, fmt.Errorf("core: corrupt index payload: %v", p)
		}
	}()
	dec := gob.NewDecoder(bufio.NewReader(r))
	var p persisted
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("core: reading index: %w", err)
	}
	if p.Format != persistFormat {
		return nil, fmt.Errorf("core: unsupported index format %d (want %d)", p.Format, persistFormat)
	}
	if p.Source == nil || p.Tr == nil {
		return nil, fmt.Errorf("core: truncated index payload")
	}
	if err := p.Source.Validate(); err != nil {
		return nil, fmt.Errorf("core: persisted source invalid: %w", err)
	}
	if err := checkTransformed(p.Tr, p.Source.Len()); err != nil {
		return nil, err
	}
	ix = &Index{tr: p.Tr, src: p.Source, tauMin: p.TauMin}
	var corr func(xStart, length int) float64
	if len(p.Source.Corr) > 0 {
		corr = ix.corrAdjust
	}
	ix.engine = NewEngine(EngineConfig{
		T:         p.Tr.T,
		LogP:      p.Tr.LogP,
		Pos:       p.Tr.Pos,
		Key:       p.Tr.Pos,
		KeySpace:  p.Source.Len(),
		Corr:      corr,
		LongCap:   p.LongCap,
		MaxWindow: p.Tr.MaxFactorLen,
	})
	return ix, nil
}

// checkTransformed verifies the structural invariants of a decoded
// transformation: parallel arrays of one length, position maps inside the
// source string, span references inside the span list. Everything the
// engine rebuild indexes by must be proven in-bounds here.
func checkTransformed(tr *factor.Transformed, sourceLen int) error {
	n := len(tr.T)
	if len(tr.LogP) != n || len(tr.Pos) != n || len(tr.SpanOf) != n {
		return fmt.Errorf("core: corrupt index payload: array lengths T=%d LogP=%d Pos=%d SpanOf=%d disagree",
			n, len(tr.LogP), len(tr.Pos), len(tr.SpanOf))
	}
	if tr.MaxFactorLen < 0 || tr.MaxFactorLen > n {
		return fmt.Errorf("core: corrupt index payload: MaxFactorLen %d outside [0, %d]", tr.MaxFactorLen, n)
	}
	if tr.SourceLen != sourceLen {
		return fmt.Errorf("core: corrupt index payload: SourceLen %d but source has %d positions", tr.SourceLen, sourceLen)
	}
	for i := 0; i < n; i++ {
		if p := tr.Pos[i]; p < -1 || int(p) >= sourceLen {
			return fmt.Errorf("core: corrupt index payload: Pos[%d] = %d outside source", i, p)
		}
		if s := tr.SpanOf[i]; s < -1 || int(s) >= len(tr.Spans) {
			return fmt.Errorf("core: corrupt index payload: SpanOf[%d] = %d outside span list", i, s)
		}
	}
	return nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
