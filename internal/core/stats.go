package core

// QueryStats accumulates the resource counters of one backend query — the
// per-document slice of the request-level obs.Cost the serving tier
// attributes. It lives in core (not internal/obs) so the index layers stay
// free of serving dependencies; the catalog sums per-shard QueryStats into
// the request's Cost at the fan-out join.
//
// A nil *QueryStats is valid everywhere and records nothing. Query paths
// count into local integers inside their hot loops and flush once on exit,
// so the uninstrumented path pays no pointer-chasing per candidate.
type QueryStats struct {
	// Candidates counts candidate positions examined: RMQ-stack pops,
	// scanned suffix-range entries, FM rows located, suffix-tree links
	// evaluated.
	Candidates int64
	// SuffixSteps counts suffix-structure steps: binary-search probes,
	// FM backward-search steps and LF hops, locus descents and RMQ pops.
	SuffixSteps int64
	// IndexBytes estimates the bytes of index data touched, from the
	// documented per-operation constants below.
	IndexBytes int64
}

// add flushes a query path's local counters. No-op on nil.
func (st *QueryStats) add(cands, steps, bytes int64) {
	if st == nil {
		return
	}
	st.Candidates += cands
	st.SuffixSteps += steps
	st.IndexBytes += bytes
}

// Add sums other into st (the catalog's fan-out join). No-op on nil st;
// a nil other adds nothing.
func (st *QueryStats) Add(other *QueryStats) {
	if st == nil || other == nil {
		return
	}
	st.Candidates += other.Candidates
	st.SuffixSteps += other.SuffixSteps
	st.IndexBytes += other.IndexBytes
}

// Per-operation index-byte estimates. These are accounting constants, not
// measurements: each names the index data one step of the corresponding
// path must read, so IndexBytes ranks queries by data touched rather than
// reporting allocator truth. OPERATIONS.md derives per-backend $/query
// constants from them.
const (
	// plainCandidateBytes: one examined suffix-array entry on the plain
	// backend — the SA value (4) + two log-domain prefix sums (16) + the
	// dedup bit / key read (4).
	plainCandidateBytes = 24
	// plainBlockBytes: one long-pattern block maximum — the float32 value
	// plus its RMQ node.
	plainBlockBytes = 8
	// fmStepBytes: one FM backward-search step — two wavelet-tree Rank
	// calls, each descending log σ bit-vector levels.
	fmStepBytes = 16
	// fmHopBytes: one LF hop of the Locate walk — an Access plus a Rank.
	fmHopBytes = 12
	// fmCandidateBytes: one located FM row — sampled-SA read (4) + two
	// prefix sums (16) + Pos read (4).
	fmCandidateBytes = 24
	// approxLinkBytes: one evaluated ε-index link — probability (4),
	// position (4), depth interval (8), RMQ node (4).
	approxLinkBytes = 20
)
