package core

import "math"

// This file is the pre-execution query cost model: it prices a query from
// statistics the serving tier already holds — document count, total
// positions, shard count, the long-pattern blocking cap and the backend
// kind — without touching the index. The admission tier uses the estimate
// to refuse over-budget work *before* paying for it, so the model's job is
// to be cheap, monotone in the right variables, and within a bounded
// factor of the measured per-query obs.Cost counters, not to be exact.
//
// The per-backend constants are calibrated against the committed load
// measurements (BENCH_4/5/7.json): the plain backend pays binary-search
// probes with pattern-length comparisons, the compressed backend pays FM
// backward-search steps plus sampled-SA locates per surviving candidate,
// and the approx ε-index pays a locus descent linear in the pattern. See
// TestEstimateCalibration for the enforced estimate-vs-measured bound.

// QueryEstimate is the predicted resource cost of one query, in the same
// counters obs.Cost measures, plus the scalar Units the admission tier
// budgets on.
type QueryEstimate struct {
	// Candidates is the predicted number of candidate positions examined.
	Candidates int64
	// SuffixSteps is the predicted number of suffix-structure steps.
	SuffixSteps int64
	// IndexBytes is the predicted bytes of index data read.
	IndexBytes int64
	// Units is the scalar admission currency: CostUnits over the predicted
	// counters. Roughly proportional to wall time on the reference machine
	// (1 unit ≈ one suffix-structure step).
	Units float64
}

// Cost-unit weights: one suffix-structure step is the currency; candidate
// examinations carry extra per-candidate arithmetic, index bytes are
// amortised over cache lines, and every fan-out shard pays a goroutine
// handoff. Shared by estimates and by measured obs.Cost via CostUnits, so
// the two are directly comparable.
const (
	unitsPerCandidate  = 4.0
	unitsPerIndexByte  = 1.0 / 64
	unitsPerMergeCmp   = 2.0
	unitsPerShard      = 16.0
	unitsPerSuffixStep = 1.0
)

// CostUnits collapses resource counters into the scalar admission currency.
// The serving tier feeds it measured obs.Cost counters to compare actual
// spend against the pre-execution estimate.
func CostUnits(candidates, suffixSteps, indexBytes, mergeComparisons, shards int64) float64 {
	return unitsPerSuffixStep*float64(suffixSteps) +
		unitsPerCandidate*float64(candidates) +
		unitsPerIndexByte*float64(indexBytes) +
		unitsPerMergeCmp*float64(mergeComparisons) +
		unitsPerShard*float64(shards)
}

// EstimateQuery prices one query against a collection of docs documents
// holding positions total positions, served by shards fan-out shards on the
// given backend, for a pattern of patternLen bytes. longCap is the
// long-pattern blocking cap the collection was built with (<= 0 means
// DefaultLongCap). The estimate is independent of tau: the threshold moves
// which candidates survive, not how many the structures must examine, and
// an admission decision cannot afford a data-dependent answer.
func EstimateQuery(spec BackendSpec, docs, positions, shards, longCap, patternLen int) QueryEstimate {
	if docs <= 0 || patternLen <= 0 {
		return QueryEstimate{}
	}
	if positions < docs {
		positions = docs
	}
	if shards <= 0 {
		shards = 1
	}
	if longCap <= 0 {
		longCap = DefaultLongCap
	}
	d := float64(docs)
	m := float64(patternLen)
	// Patterns beyond the blocking cap fall off the O(m + log n) path; the
	// structures only ever walk longCap characters of them.
	if patternLen > longCap {
		m = float64(longCap)
	}
	avgLen := float64(positions) / d
	logN := math.Log2(avgLen + 1)

	// Candidate survival: every extra pattern character cuts the surviving
	// candidate set roughly by the alphabet's branching factor. Capped at 8
	// characters — beyond that the prediction is already ≪ 1 per document
	// and the decay constant stops being data-independent.
	decay := math.Pow(4, math.Min(m, 8))
	candidates := float64(positions) / decay
	if candidates < 1 {
		candidates = 1
	}

	var steps, bytes float64
	switch spec.Kind {
	case BackendCompressed:
		// FM backward search: ≤ m rank steps per document, plus an LF-walk
		// of ~the SA sample rate per surviving candidate to locate it.
		steps = d*m + candidates*16
		bytes = steps * 15
	case BackendApprox:
		// ε-index locus descent: linear in the pattern per document, with
		// the O(1) over-long exit; the succinct layout touches few bytes.
		steps = d * m
		bytes = steps * 2
	default:
		// Plain suffix array: per document a binary search of log n probes,
		// each comparing up to m characters — measured closer to m + log n
		// per document than m·log n because probes bail on first mismatch.
		steps = d * (m + logN)
		bytes = steps * (4 + m)
	}
	est := QueryEstimate{
		Candidates:  int64(math.Ceil(candidates)),
		SuffixSteps: int64(math.Ceil(steps)),
		IndexBytes:  int64(math.Ceil(bytes)),
	}
	est.Units = CostUnits(est.Candidates, est.SuffixSteps, est.IndexBytes, 0, int64(shards))
	return est
}
