package approx

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gen"
)

func TestApproxPersistRoundTrip(t *testing.T) {
	s := gen.Single(gen.Config{N: 1000, Theta: 0.3, Seed: 541})
	ix, err := Build(s, 0.1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil || n != int64(buf.Len()) {
		t.Fatalf("WriteTo: %v (n=%d len=%d)", err, n, buf.Len())
	}
	back, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Epsilon() != ix.Epsilon() || back.TauMin() != ix.TauMin() {
		t.Error("parameters lost in round trip")
	}
	for _, p := range gen.Patterns(s, 10, 4, 547) {
		a, err := ix.Search(p, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Search(p, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("round-tripped approx index diverges on %q", p)
		}
	}
}

func TestApproxReadErrors(t *testing.T) {
	if _, err := ReadIndex(strings.NewReader("")); err == nil {
		t.Error("empty accepted")
	}
	if _, err := ReadIndex(strings.NewReader("junk")); err == nil {
		t.Error("junk accepted")
	}
}
