package approx

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/ustring"
)

// approxFormat tags the persisted layout.
const approxFormat = 1

type persisted struct {
	Format  int
	TauMin  float64
	Epsilon float64
	Source  *ustring.String
}

// WriteTo serialises the index (source string and parameters; the link
// structure is deterministic and rebuilt on load).
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	err := gob.NewEncoder(cw).Encode(persisted{
		Format:  approxFormat,
		TauMin:  ix.tauMin,
		Epsilon: ix.epsilon,
		Source:  sourceOf(ix),
	})
	return cw.n, err
}

// sourceOf reconstructs the indexed string handle captured at Build time.
func sourceOf(ix *Index) *ustring.String { return ix.Source() }

// ReadIndex loads an index written by WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	var p persisted
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&p); err != nil {
		return nil, fmt.Errorf("approx: reading index: %w", err)
	}
	if p.Format != approxFormat {
		return nil, fmt.Errorf("approx: unsupported format %d", p.Format)
	}
	if p.Source == nil {
		return nil, fmt.Errorf("approx: truncated payload")
	}
	return Build(p.Source, p.TauMin, p.Epsilon)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(b []byte) (int, error) {
	n, err := cw.w.Write(b)
	cw.n += int64(n)
	return n, err
}
