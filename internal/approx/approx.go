// Package approx implements the paper's Section 7: an approximate substring
// search index answering queries in optimal time for any τ ≥ τmin, with an
// additive error ε — every reported occurrence has true probability at least
// τ − ε, and no occurrence with probability above τ is missed.
//
// # Construction
//
// The uncertain string is transformed with Lemma 2 and a suffix tree is
// built over the transformed text. Following the Hon–Shah–Vitter framework:
//
//   - every leaf is marked with the original position (PosId) its suffix
//     starts at; an internal node is marked with d when it is the LCA of two
//     leaves marked d;
//   - for every node u marked d, a link (origin=u, target=lowest proper
//     ancestor of u marked d, PosId=d) is created. For any pattern locus and
//     any original position d matching it, exactly one link has its origin in
//     the locus subtree and its target strictly above — the stabbing query;
//   - each link carries the probability of prefix(origin) matching at d, and
//     is split into sub-links whose probabilities differ by at most ε along
//     the path (the paper's discretisation), so the probability attached to
//     the stabbed sub-link underestimates the true match probability by at
//     most ε.
//
// Sub-link origins live on tree edges; each is stored with its base node
// (the node below it), the depth interval (DLow, DHigh] it covers, and the
// probability at DHigh. A stab for pattern length m selects links with base
// node inside the locus subtree and DLow < m ≤ DHigh.
//
// # Query
//
// Links are sorted by origin preorder; a range-maximum structure over link
// probabilities extracts, for the locus preorder interval, every link with
// probability above τ − ε in decreasing order, stopping at the threshold —
// O(log N + occ) plus the depth-filter rejections on the two edges
// bracketing the locus (at most ⌈1/ε⌉ each).
package approx

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/factor"
	"repro/internal/prob"
	"repro/internal/rmq"
	"repro/internal/stree"
	"repro/internal/suffix"
	"repro/internal/ustring"
)

// Errors reported by Build and Search.
var (
	ErrBadEpsilon       = errors.New("approx: epsilon must be in (0, 1)")
	ErrCorrUnsupported  = errors.New("approx: correlations are not supported by the approximate index")
	ErrTauOutOfRange    = errors.New("approx: tau out of range (0, 1]")
	ErrTauBelowTauMin   = errors.New("approx: tau below the construction threshold tau_min")
	ErrEmptyPattern     = errors.New("approx: empty pattern")
	ErrPatternSeparator = errors.New("approx: pattern contains the reserved separator byte")
)

// Match is one approximate search result.
type Match struct {
	// Pos is the occurrence position in the original string.
	Pos int
	// ApproxProb is the link probability: a lower bound on the true match
	// probability, within ε of it.
	ApproxProb float64
}

// Index is the Section 7 structure.
type Index struct {
	tr      *factor.Transformed
	tree    *stree.Tree
	pre     *prob.Prefix
	src     *ustring.String
	tauMin  float64
	epsilon float64

	// Parallel link arrays, sorted by base-node preorder.
	linkPre   []int32
	linkBase  []int32
	linkDLow  []int32
	linkDHigh []int32
	linkPos   []int32
	linkProb  []float64
	probRMQ   *rmq.Block
	// linkStart[r] is the number of links with base preorder < r
	// (len = numNodes+1), so the link range of a preorder interval [a, b]
	// is [linkStart[a], linkStart[b+1]) — two O(1) lookups instead of two
	// binary searches over the (large, usually cache-cold) link arrays on
	// every query.
	linkStart []int32
}

// Build constructs the approximate index for thresholds τ ≥ tauMin with
// additive error at most epsilon.
func Build(s *ustring.String, tauMin, epsilon float64) (*Index, error) {
	if !(epsilon > 0 && epsilon < 1) || math.IsNaN(epsilon) {
		return nil, fmt.Errorf("%w (got %v)", ErrBadEpsilon, epsilon)
	}
	if len(s.Corr) > 0 {
		return nil, ErrCorrUnsupported
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("approx: invalid input string: %w", err)
	}
	tr, err := factor.Transform(s, tauMin)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		tr:      tr,
		src:     s,
		tauMin:  tauMin,
		epsilon: epsilon,
		pre:     prob.NewPrefix(tr.LogP),
	}
	tx := suffix.New(tr.T)
	ix.tree = stree.Build(tx)
	if tx.Len() > 0 {
		ix.buildLinks(tx)
	}
	return ix, nil
}

// buildLinks creates the ε-refined HSV links for every original position.
func (ix *Index) buildLinks(tx *suffix.Text) {
	t := ix.tree
	n := tx.Len()

	// Group suffix-array positions (= leaves, in preorder order) by PosId.
	byPos := make(map[int32][]int32)
	for j := 0; j < n; j++ {
		d := ix.tr.Pos[tx.SA()[j]]
		if d < 0 {
			continue
		}
		byPos[d] = append(byPos[d], int32(j))
	}
	// Deterministic iteration order.
	ds := make([]int32, 0, len(byPos))
	for d := range byPos {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })

	for _, d := range ds {
		leaves := byPos[d]
		// Marked nodes: the leaves plus LCAs of adjacent leaves, LCA-closed.
		type marked struct {
			node int32
			rep  int32 // representative leaf (SA position) below node with PosId d
		}
		set := map[int32]int32{} // node -> rep leaf
		for _, l := range leaves {
			set[t.Leaf(int(l))] = l
		}
		for i := 1; i < len(leaves); i++ {
			lca := t.LCALeaves(int(leaves[i-1]), int(leaves[i]))
			if _, ok := set[lca]; !ok {
				set[lca] = leaves[i-1]
			}
		}
		nodes := make([]marked, 0, len(set))
		for v, rep := range set {
			nodes = append(nodes, marked{v, rep})
		}
		sort.Slice(nodes, func(a, b int) bool { return t.Pre(nodes[a].node) < t.Pre(nodes[b].node) })

		// Induced ("virtual") tree via the preorder stack; the parent on the
		// stack is the lowest marked proper ancestor — the link target.
		var stack []marked
		for _, mk := range nodes {
			for len(stack) > 0 && !t.IsAncestor(stack[len(stack)-1].node, mk.node) {
				stack = stack[:len(stack)-1]
			}
			parentDepth := int32(0)
			if len(stack) > 0 {
				parentDepth = t.Depth(stack[len(stack)-1].node)
			}
			ix.emitChain(mk.node, mk.rep, parentDepth, d)
			stack = append(stack, mk)
		}
	}

	// Sort links by base-node preorder for the stabbing structure.
	order := make([]int, len(ix.linkPre))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if ix.linkPre[order[a]] != ix.linkPre[order[b]] {
			return ix.linkPre[order[a]] < ix.linkPre[order[b]]
		}
		return ix.linkDHigh[order[a]] > ix.linkDHigh[order[b]]
	})
	permute32 := func(xs []int32) []int32 {
		out := make([]int32, len(xs))
		for i, o := range order {
			out[i] = xs[o]
		}
		return out
	}
	ix.linkPre = permute32(ix.linkPre)
	ix.linkBase = permute32(ix.linkBase)
	ix.linkDLow = permute32(ix.linkDLow)
	ix.linkDHigh = permute32(ix.linkDHigh)
	ix.linkPos = permute32(ix.linkPos)
	probs := make([]float64, len(ix.linkProb))
	for i, o := range order {
		probs[i] = ix.linkProb[o]
	}
	ix.linkProb = probs
	ix.probRMQ = rmq.NewBlock(len(ix.linkProb), func(i int) float64 { return ix.linkProb[i] })

	ix.linkStart = make([]int32, t.NumNodes()+1)
	for _, pre := range ix.linkPre {
		ix.linkStart[pre+1]++
	}
	for r := 1; r < len(ix.linkStart); r++ {
		ix.linkStart[r] += ix.linkStart[r-1]
	}
}

// emitChain splits the path piece from node v (string depth depth(v)) up to
// its lowest marked proper ancestor (string depth parentDepth) into ε-bounded
// sub-links for original position d. rep is a leaf (suffix array position)
// below v whose suffix starts the occurrence: probabilities at any depth k
// are window probabilities of length k at text position SA[rep].
func (ix *Index) emitChain(v, rep, parentDepth, d int32) {
	t := ix.tree
	x0 := int(t.Text().SA()[rep])
	// Windows are only valid inside the factor: cap at the remaining length.
	rem := 0
	if sp := ix.tr.SpanOf[x0]; sp >= 0 {
		rem = ix.tr.Spans[sp].XEnd - x0
	}
	hi := int(t.Depth(v))
	if hi > rem {
		hi = rem
	}
	lo := int(parentDepth)
	if hi <= lo {
		return
	}
	emit := func(dLow, dHigh int, p float64) {
		ix.linkPre = append(ix.linkPre, t.Pre(v))
		ix.linkBase = append(ix.linkBase, v)
		ix.linkDLow = append(ix.linkDLow, int32(dLow))
		ix.linkDHigh = append(ix.linkDHigh, int32(dHigh))
		ix.linkPos = append(ix.linkPos, d)
		ix.linkProb = append(ix.linkProb, p)
	}
	segHi := hi
	segProb := prob.Exp(ix.pre.Span(x0, x0+segHi))
	for k := hi - 1; k > lo; k-- {
		pk := prob.Exp(ix.pre.Span(x0, x0+k))
		if pk-segProb > ix.epsilon {
			emit(k, segHi, segProb)
			segHi = k
			segProb = pk
		}
	}
	emit(lo, segHi, segProb)
}

// Search reports every original position where p matches with probability
// greater than τ, possibly with false positives down to τ − ε, sorted by
// position. The reported ApproxProb underestimates the true probability by
// at most ε.
func (ix *Index) Search(p []byte, tau float64) ([]Match, error) {
	if len(p) == 0 {
		return nil, ErrEmptyPattern
	}
	for _, c := range p {
		if c == 0 {
			return nil, ErrPatternSeparator
		}
	}
	if math.IsNaN(tau) || tau <= 0 || tau > 1 {
		return nil, fmt.Errorf("%w (got %v)", ErrTauOutOfRange, tau)
	}
	if tau < ix.tauMin-prob.Eps {
		return nil, fmt.Errorf("%w (tau=%v, tau_min=%v)", ErrTauBelowTauMin, tau, ix.tauMin)
	}
	return ix.SearchPrevalidated(p, tau), nil
}

// SearchPrevalidated is Search for callers that have already validated
// (p, tau) — a serving backend running one shared validation pass must not
// pay a second per-document pattern scan on every shard fan-out. Passing an
// unvalidated query is undefined behaviour.
func (ix *Index) SearchPrevalidated(p []byte, tau float64) []Match {
	ms, _, _ := ix.SearchPrevalidatedCosted(p, tau)
	return ms
}

// SearchPrevalidatedCosted is SearchPrevalidated plus the cost counters the
// serving layer attributes per request: examined is the number of candidate
// links popped from the probability-RMQ stack, steps the suffix-structure
// work (locus descent over |p| characters plus one RMQ evaluation per pop).
func (ix *Index) SearchPrevalidatedCosted(p []byte, tau float64) (ms []Match, examined, steps int) {
	if ix.tree.Root() < 0 {
		return nil, 0, 0
	}
	// A match lives entirely inside one transformed factor (patterns cannot
	// contain the separator byte), so a pattern longer than the longest
	// factor can never occur — answer without touching the suffix
	// structure. This is what keeps very long patterns O(1) instead of
	// paying a full binary search that is guaranteed to miss.
	if len(p) > ix.tr.MaxFactorLen {
		return nil, 0, 0
	}
	steps = len(p) // locus descent reads each pattern character once
	node, _, _, ok := ix.tree.Locus(p)
	if !ok {
		return nil, 0, steps
	}
	a, b := ix.tree.PreRange(node)
	// Link index range with base preorder in [a, b].
	lo := int(ix.linkStart[a])
	hi := int(ix.linkStart[b+1]) - 1
	if lo > hi {
		return nil, 0, steps
	}
	m := int32(len(p))
	thr := tau - ix.epsilon

	// The extraction stack lives in a fixed scratch array in the common
	// case: its depth is bounded by the number of qualifying links, which is
	// small for typical queries, and the reflection-free sort below keeps
	// the per-query constant factors at the plain backend's level.
	var out []Match
	type span struct{ l, r int }
	var scratch [12]span
	stack := append(scratch[:0], span{lo, hi})
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.l > s.r {
			continue
		}
		examined++
		steps++
		j := ix.probRMQ.Max(s.l, s.r)
		if !(ix.linkProb[j] > thr) {
			continue
		}
		if ix.linkDLow[j] < m && m <= ix.linkDHigh[j] {
			out = append(out, Match{Pos: int(ix.linkPos[j]), ApproxProb: ix.linkProb[j]})
		}
		stack = append(stack, span{s.l, j - 1}, span{j + 1, s.r})
	}
	sortMatches(out)
	return out, examined, steps
}

// sortMatches orders matches by position: insertion sort for the tiny
// result sets threshold queries typically produce, sort.Sort (on a concrete
// type, no reflection) beyond.
func sortMatches(ms []Match) {
	if len(ms) <= 24 {
		for i := 1; i < len(ms); i++ {
			for j := i; j > 0 && ms[j].Pos < ms[j-1].Pos; j-- {
				ms[j], ms[j-1] = ms[j-1], ms[j]
			}
		}
		return
	}
	sort.Sort(matchesByPos(ms))
}

type matchesByPos []Match

func (ms matchesByPos) Len() int           { return len(ms) }
func (ms matchesByPos) Less(a, b int) bool { return ms[a].Pos < ms[b].Pos }
func (ms matchesByPos) Swap(a, b int)      { ms[a], ms[b] = ms[b], ms[a] }

// Epsilon returns the construction error bound.
func (ix *Index) Epsilon() float64 { return ix.epsilon }

// Source returns the indexed uncertain string.
func (ix *Index) Source() *ustring.String { return ix.src }

// TauMin returns the construction threshold.
func (ix *Index) TauMin() float64 { return ix.tauMin }

// NumLinks returns the number of ε-refined links (the paper's O(N/ε)).
func (ix *Index) NumLinks() int { return len(ix.linkProb) }

// Bytes reports the memory footprint.
func (ix *Index) Bytes() int {
	b := ix.tr.Bytes() + ix.tree.Bytes() + ix.pre.Bytes()
	b += len(ix.linkPre)*4*5 + len(ix.linkProb)*8 + len(ix.linkStart)*4
	if ix.probRMQ != nil {
		b += ix.probRMQ.Bytes()
	}
	return b
}
