package approx

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/ustring"
)

func randomUString(rng *rand.Rand, n, sigma int, theta float64) *ustring.String {
	s := &ustring.String{Pos: make([]ustring.Position, n)}
	for i := 0; i < n; i++ {
		if rng.Float64() >= theta {
			s.Pos[i] = ustring.Position{{Char: byte('a' + rng.Intn(sigma)), Prob: 1}}
			continue
		}
		k := 2 + rng.Intn(2)
		if k > sigma {
			k = sigma
		}
		perm := rng.Perm(sigma)
		pos := make(ustring.Position, k)
		acc := 0.0
		for j := 0; j < k; j++ {
			p := (1 - acc) / float64(k-j)
			if j < k-1 {
				p *= 0.6 + 0.8*rng.Float64()
				if p > 1-acc {
					p = 1 - acc
				}
			} else {
				p = 1 - acc
			}
			acc += p
			pos[j] = ustring.Choice{Char: byte('a' + perm[j]), Prob: p}
		}
		s.Pos[i] = pos
	}
	return s
}

func allPatterns(m, sigma int) [][]byte {
	if m == 0 {
		return [][]byte{nil}
	}
	var out [][]byte
	for _, prefix := range allPatterns(m-1, sigma) {
		for c := 0; c < sigma; c++ {
			out = append(out, append(append([]byte(nil), prefix...), byte('a'+c)))
		}
	}
	return out
}

// TestApproxGuarantees is the contract test of Section 7: for every query,
//
//  1. completeness — every position with true probability > τ is reported;
//  2. soundness — every reported position has true probability > τ − ε;
//  3. accuracy — ApproxProb ∈ [trueProb − ε, trueProb];
//  4. uniqueness — no position reported twice.
func TestApproxGuarantees(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(14)
		s := randomUString(rng, n, 3, 0.6)
		tauMin := 0.1
		eps := []float64{0.01, 0.05, 0.15}[trial%3]
		ix, err := Build(s, tauMin, eps)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		for m := 1; m <= 4; m++ {
			for _, p := range allPatterns(m, 3) {
				for _, tau := range []float64{0.1, 0.25, 0.5} {
					matches, err := ix.Search(p, tau)
					if err != nil {
						t.Fatalf("Search(%q, %v): %v", p, tau, err)
					}
					got := map[int]float64{}
					for _, mt := range matches {
						if _, dup := got[mt.Pos]; dup {
							t.Fatalf("position %d reported twice for %q", mt.Pos, p)
						}
						got[mt.Pos] = mt.ApproxProb
					}
					for i := 0; i+m <= s.Len(); i++ {
						truth := s.OccurrenceProb(p, i)
						ap, reported := got[i]
						if truth > tau+1e-9 && !reported {
							t.Fatalf("trial %d: missed match %q at %d (prob %v > τ=%v, ε=%v)\nS: %s",
								trial, p, i, truth, tau, eps, s.Format())
						}
						if reported {
							if truth <= tau-eps-1e-9 {
								t.Fatalf("trial %d: false positive %q at %d (prob %v ≤ τ−ε=%v)\nS: %s",
									trial, p, i, truth, tau-eps, s.Format())
							}
							if ap > truth+1e-9 || truth-ap > eps+1e-9 {
								t.Fatalf("ApproxProb %v outside [truth−ε, truth] = [%v, %v]",
									ap, truth-eps, truth)
							}
						}
					}
				}
			}
		}
	}
}

func TestApproxRealisticWorkload(t *testing.T) {
	s := gen.Single(gen.Config{N: 3000, Theta: 0.3, Seed: 167})
	eps := 0.05
	ix, err := Build(s, 0.1, eps)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("links: %d (%.2f per transformed char)", ix.NumLinks(),
		float64(ix.NumLinks())/float64(ix.tr.Len()))
	rng := rand.New(rand.NewSource(173))
	for _, m := range []int{2, 4, 8, 16} {
		for _, p := range gen.Patterns(s, 10, m, rng.Int63()) {
			tau := 0.2
			matches, err := ix.Search(p, tau)
			if err != nil {
				t.Fatal(err)
			}
			reported := map[int]bool{}
			for _, mt := range matches {
				reported[mt.Pos] = true
				truth := s.OccurrenceProb(p, mt.Pos)
				if truth <= tau-eps-1e-9 {
					t.Fatalf("false positive at %d: prob %v", mt.Pos, truth)
				}
			}
			for _, pos := range s.MatchPositions(p, tau) {
				if !reported[pos] {
					t.Fatalf("missed match %q at %d", p, pos)
				}
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	s := ustring.Deterministic("ab")
	for _, eps := range []float64{0, -0.1, 1, math.NaN()} {
		if _, err := Build(s, 0.1, eps); err == nil {
			t.Errorf("epsilon=%v accepted", eps)
		}
	}
	corr := &ustring.String{
		Pos: []ustring.Position{
			{{Char: 'a', Prob: 1}},
			{{Char: 'b', Prob: 1}},
		},
		Corr: []ustring.Correlation{{
			At: 1, Char: 'b', DepAt: 0, DepChar: 'a',
			ProbWhenPresent: 1, ProbWhenAbsent: 1,
		}},
	}
	if _, err := Build(corr, 0.1, 0.05); err != ErrCorrUnsupported {
		t.Errorf("correlated string: err = %v, want ErrCorrUnsupported", err)
	}
	if _, err := Build(ustring.Deterministic("ab"), -1, 0.05); err == nil {
		t.Error("bad tauMin accepted")
	}
}

func TestSearchErrors(t *testing.T) {
	ix, err := Build(ustring.Deterministic("abc"), 0.1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(nil, 0.2); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := ix.Search([]byte{0}, 0.2); err == nil {
		t.Error("separator pattern accepted")
	}
	if _, err := ix.Search([]byte("a"), 0); err == nil {
		t.Error("tau=0 accepted")
	}
	if _, err := ix.Search([]byte("a"), 0.05); err == nil {
		t.Error("tau below tauMin accepted")
	}
	got, err := ix.Search([]byte("zz"), 0.5)
	if err != nil || got != nil {
		t.Errorf("missing pattern: %v, %v", got, err)
	}
}

func TestEmptyString(t *testing.T) {
	ix, err := Build(&ustring.String{}, 0.1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Search([]byte("a"), 0.2)
	if err != nil || got != nil {
		t.Errorf("empty index search: %v, %v", got, err)
	}
}

func TestEpsilonControlsLinkCount(t *testing.T) {
	s := gen.Single(gen.Config{N: 2000, Theta: 0.4, Seed: 179})
	coarse, err := Build(s, 0.1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Build(s, 0.1, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if fine.NumLinks() <= coarse.NumLinks() {
		t.Errorf("finer ε must create more links: %d (ε=.02) vs %d (ε=.2)",
			fine.NumLinks(), coarse.NumLinks())
	}
	if coarse.Epsilon() != 0.2 || coarse.TauMin() != 0.1 {
		t.Error("accessors broken")
	}
	if coarse.Bytes() <= 0 {
		t.Error("Bytes must be positive")
	}
}
