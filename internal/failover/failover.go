// Package failover is the thin write redirector in front of a replicated
// ustridxd pair (or fleet): it probes every node's /healthz and /v1/stats,
// decides which node currently is the primary — by role first, then by the
// highest collection epoch when more than one node claims the role — and
// steers traffic with Location-style redirects. Mutations always go to the
// elected primary; reads round-robin across every healthy node.
//
// The router holds no state the nodes do not already expose, so it can be
// restarted (or run in multiples) at will. It is deliberately NOT a
// coordinator: promotion is an operator action (POST /v1/promote on the
// chosen follower); the router merely observes the outcome and, when two
// nodes claim the primary role, pokes the lower-epoch claimant's feed with
// the higher epoch so it fences itself instead of accepting split-brain
// writes.
package failover

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	olog "repro/internal/obs/log"
)

// Defaults.
const (
	// DefaultProbeInterval is the health/role probe cadence.
	DefaultProbeInterval = 500 * time.Millisecond
	// DefaultProbeTimeout bounds one node probe.
	DefaultProbeTimeout = 2 * time.Second
)

// Options configures a Router.
type Options struct {
	// Nodes are the ustridxd base URLs under management (required,
	// at least one). Order breaks epoch ties during election.
	Nodes []string
	// ProbeInterval is the polling cadence of Run; 0 means
	// DefaultProbeInterval.
	ProbeInterval time.Duration
	// Client issues probes and fencing pokes; nil means a client with
	// DefaultProbeTimeout.
	Client *http.Client
	// FenceStale, when true, lets the router poke the lower-epoch claimant
	// of a split-brain pair so it fences itself. Off by default: the poke
	// mutates cluster state, which a pure observer must opt into.
	FenceStale bool
	// Log receives router diagnostics; nil discards them.
	Log *olog.Logger
	// Metrics, when non-nil, receives probe/redirect counters and
	// per-node health gauges.
	Metrics *obs.Registry
}

// NodeState is one node's last observed condition.
type NodeState struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Role is the node's self-reported effective role: primary, replica,
	// fenced or static; empty when the node is unreachable.
	Role string `json:"role,omitempty"`
	// MaxEpoch is the highest collection epoch the node reported; the
	// election tie-breaker between rival primaries.
	MaxEpoch uint64 `json:"max_epoch"`
	// Collections maps collection name to its epoch, kept for fencing
	// pokes against a rival primary.
	Collections map[string]uint64 `json:"collections,omitempty"`
	Error       string            `json:"error,omitempty"`
}

// Status is the /v1/failover/status body.
type Status struct {
	// Primary is the elected primary's base URL; empty when no healthy
	// unfenced primary exists.
	Primary string      `json:"primary"`
	Nodes   []NodeState `json:"nodes"`
	// Probes counts completed probe rounds; a client can watch it move to
	// know the state is fresh.
	Probes int64 `json:"probes"`
}

// Router is the redirector. Zero value is not usable; call New.
type Router struct {
	opts   Options
	client *http.Client
	log    *olog.Logger

	mu      sync.RWMutex
	nodes   []NodeState
	primary string
	probes  int64
	rr      int

	probesTotal    *obs.Counter
	redirects      *obs.CounterVec
	noPrimary      *obs.Counter
	fencePokes     *obs.Counter
	healthyGauge   *obs.GaugeVec
	primaryGauge   *obs.GaugeVec
	electionSwaps  *obs.Counter
	lastElectedSet bool
}

// New builds a Router over opts.Nodes.
func New(opts Options) (*Router, error) {
	if len(opts.Nodes) == 0 {
		return nil, fmt.Errorf("failover: no nodes configured")
	}
	for _, n := range opts.Nodes {
		u, err := url.Parse(n)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("failover: bad node URL %q", n)
		}
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = DefaultProbeInterval
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: DefaultProbeTimeout}
	}
	log := opts.Log
	r := &Router{opts: opts, client: client, log: log}
	r.nodes = make([]NodeState, len(opts.Nodes))
	for i, n := range opts.Nodes {
		r.nodes[i] = NodeState{URL: n}
	}
	if reg := opts.Metrics; reg != nil {
		r.probesTotal = reg.Counter("ustridx_failover_probes_total",
			"Completed probe rounds across all nodes.")
		r.redirects = reg.CounterVec("ustridx_failover_redirects_total",
			"Redirects issued, by kind (mutation, read).", "kind")
		r.noPrimary = reg.Counter("ustridx_failover_no_primary_total",
			"Mutations refused because no healthy primary was known.")
		r.fencePokes = reg.Counter("ustridx_failover_fence_pokes_total",
			"Fencing pokes sent to lower-epoch rival primaries.")
		r.electionSwaps = reg.Counter("ustridx_failover_elections_total",
			"Times the elected primary changed.")
		r.healthyGauge = reg.GaugeVec("ustridx_failover_node_healthy",
			"1 when the node answered its last probe, else 0.", "node")
		r.primaryGauge = reg.GaugeVec("ustridx_failover_node_primary",
			"1 on the elected primary, 0 elsewhere.", "node")
	}
	return r, nil
}

// statsBody is the slice of /v1/stats the router reads.
type statsBody struct {
	Role   string `json:"role"`
	Ingest []struct {
		Name  string `json:"name"`
		Epoch uint64 `json:"epoch"`
	} `json:"ingest"`
}

// probeNode fetches one node's role and epochs.
func (r *Router) probeNode(ctx context.Context, base string) NodeState {
	ns := NodeState{URL: base}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stats", nil)
	if err != nil {
		ns.Error = err.Error()
		return ns
	}
	resp, err := r.client.Do(req)
	if err != nil {
		ns.Error = err.Error()
		return ns
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		ns.Error = fmt.Sprintf("stats status %d", resp.StatusCode)
		return ns
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		ns.Error = err.Error()
		return ns
	}
	var st statsBody
	if err := json.Unmarshal(body, &st); err != nil {
		ns.Error = fmt.Sprintf("bad stats body: %v", err)
		return ns
	}
	ns.Healthy = true
	ns.Role = st.Role
	ns.Collections = make(map[string]uint64, len(st.Ingest))
	for _, c := range st.Ingest {
		ns.Collections[c.Name] = c.Epoch
		if c.Epoch > ns.MaxEpoch {
			ns.MaxEpoch = c.Epoch
		}
	}
	return ns
}

// ProbeOnce runs one full probe round synchronously: every node is polled,
// the primary re-elected, and (when enabled) split-brain rivals poked.
// Deterministic tests drive the router through this instead of Run's timer.
func (r *Router) ProbeOnce(ctx context.Context) Status {
	states := make([]NodeState, len(r.opts.Nodes))
	for i, n := range r.opts.Nodes {
		states[i] = r.probeNode(ctx, n)
	}

	// Election: healthy, self-reported primary (a fenced node reports
	// "fenced", so it can never win), highest epoch first; list order
	// breaks ties.
	primary := ""
	var best uint64
	var claimants []NodeState
	for _, ns := range states {
		if ns.Healthy && ns.Role == "primary" {
			claimants = append(claimants, ns)
			if primary == "" || ns.MaxEpoch > best {
				primary, best = ns.URL, ns.MaxEpoch
			}
		}
	}
	if len(claimants) > 1 && r.opts.FenceStale {
		for _, ns := range claimants {
			if ns.URL != primary {
				r.fenceRival(ctx, ns, best, statesByURL(states, primary))
			}
		}
	}

	r.mu.Lock()
	swapped := r.primary != primary && r.lastElectedSet
	r.lastElectedSet = true
	oldPrimary := r.primary
	r.nodes = states
	r.primary = primary
	r.probes++
	st := Status{Primary: primary, Nodes: append([]NodeState(nil), states...), Probes: r.probes}
	r.mu.Unlock()

	if r.probesTotal != nil {
		r.probesTotal.Inc()
		for _, ns := range states {
			h, p := int64(0), int64(0)
			if ns.Healthy {
				h = 1
			}
			if ns.URL == primary {
				p = 1
			}
			r.healthyGauge.With(ns.URL).SetInt(h)
			r.primaryGauge.With(ns.URL).SetInt(p)
		}
		if swapped {
			r.electionSwaps.Inc()
		}
	}
	if swapped {
		r.log.Info("failover: primary changed", "from", oldPrimary, "to", primary)
	}
	return st
}

func statesByURL(states []NodeState, url string) NodeState {
	for _, ns := range states {
		if ns.URL == url {
			return ns
		}
	}
	return NodeState{}
}

// fenceRival pokes one rival primary's feed with the winner's epochs so the
// rival fences itself: for every collection the winner serves at a higher
// epoch, one WAL poll carrying that epoch is enough — the rival's ingest
// store fences on sight and every subsequent write there answers 409.
func (r *Router) fenceRival(ctx context.Context, rival NodeState, winnerEpoch uint64, winner NodeState) {
	for coll, epoch := range winner.Collections {
		if rival.Collections[coll] >= epoch {
			continue
		}
		u := rival.URL + "/v1/replication/wal?collection=" + url.QueryEscape(coll) +
			"&epoch=" + strconv.FormatUint(epoch, 10) + "&from=0"
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			continue
		}
		resp, err := r.client.Do(req)
		if err != nil {
			continue
		}
		resp.Body.Close()
		if r.fencePokes != nil {
			r.fencePokes.Inc()
		}
		r.log.Warn("failover: poked rival primary to fence it",
			"rival", rival.URL, "collection", coll, "epoch", epoch,
			"status", resp.StatusCode)
	}
}

// Run probes until ctx is cancelled.
func (r *Router) Run(ctx context.Context) error {
	t := time.NewTicker(r.opts.ProbeInterval)
	defer t.Stop()
	r.ProbeOnce(ctx)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			r.ProbeOnce(ctx)
		}
	}
}

// Primary returns the currently elected primary's base URL ("" when none).
func (r *Router) Primary() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.primary
}

// Status snapshots the router's view.
func (r *Router) Status() Status {
	r.mu.RLock()
	defer r.mu.RUnlock()
	nodes := append([]NodeState(nil), r.nodes...)
	sort.SliceStable(nodes, func(i, j int) bool { return nodes[i].URL < nodes[j].URL })
	return Status{Primary: r.primary, Nodes: nodes, Probes: r.probes}
}

// isMutation classifies a request: document PUT/DELETE, compact and promote
// must reach the primary; everything else is a read any healthy node can
// answer.
func isMutation(req *http.Request) bool {
	switch req.Method {
	case http.MethodPut, http.MethodDelete:
		return true
	case http.MethodPost:
		return req.URL.Path == "/v1/compact"
	default:
		return false
	}
}

// nextRead picks a healthy node round-robin for a read.
func (r *Router) nextRead() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.nodes)
	for i := 0; i < n; i++ {
		ns := r.nodes[(r.rr+i)%n]
		if ns.Healthy {
			r.rr = (r.rr + i + 1) % n
			return ns.URL
		}
	}
	return ""
}

// ServeHTTP steers one request: 307 to the right node, preserving method
// and body semantics (307, not 302, so a PUT stays a PUT).
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path == "/v1/failover/status" {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(r.Status())
		return
	}
	if req.URL.Path == "/healthz" {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
		return
	}
	var target, kind string
	if isMutation(req) {
		target, kind = r.Primary(), "mutation"
		if target == "" {
			if r.noPrimary != nil {
				r.noPrimary.Inc()
			}
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]string{"error": "no healthy primary", "code": "no_primary"})
			return
		}
	} else {
		target, kind = r.nextRead(), "read"
		if target == "" {
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]string{"error": "no healthy node", "code": "no_node"})
			return
		}
	}
	if r.redirects != nil {
		r.redirects.With(kind).Inc()
	}
	http.Redirect(w, req, target+req.URL.RequestURI(), http.StatusTemporaryRedirect)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
