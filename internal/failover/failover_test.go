package failover_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/failover"
	"repro/internal/gen"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/ustring"
)

func openStore(t *testing.T) *ingest.Store {
	t.Helper()
	st, err := ingest.Open(nil, ingest.Options{
		Dir:              t.TempDir(),
		Catalog:          catalog.Options{TauMin: 0.1, Shards: 3},
		CompactThreshold: -1,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func put(t *testing.T, base, coll, id string, doc *ustring.String) *http.Response {
	t.Helper()
	var body bytes.Buffer
	if err := ustring.Marshal(&body, doc); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut,
		fmt.Sprintf("%s/v1/collections/%s/documents/%s", base, coll, id), &body)
	if err != nil {
		t.Fatal(err)
	}
	// The router answers 307; the test wants to see the redirect itself,
	// not follow it.
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestRouterElectsAndRedirects drives the router with ProbeOnce through a
// promotion: mutations first steer at the original primary, then — after
// the follower is promoted — at the new one, purely from observed state.
func TestRouterElectsAndRedirects(t *testing.T) {
	pst := openStore(t)
	pts := httptest.NewServer(server.NewIngest(pst, server.Config{}))
	t.Cleanup(pts.Close)
	docs := gen.Collection(gen.Config{N: 300, Theta: 0.3, Seed: 41})
	if _, err := pst.Put("prot", "seed", docs[0]); err != nil {
		t.Fatal(err)
	}

	fst := openStore(t)
	f, err := replica.NewFollower(replica.FollowerOptions{
		Primary:          pts.URL,
		Store:            fst,
		PollInterval:     2 * time.Millisecond,
		DiscoverInterval: 10 * time.Millisecond,
		MaxBackoff:       50 * time.Millisecond,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	rts := httptest.NewServer(server.NewReplica(f, server.Config{}))
	t.Cleanup(rts.Close)

	deadline := time.Now().Add(30 * time.Second)
	for !f.CaughtUp() {
		if time.Now().After(deadline) {
			t.Fatal("follower never caught up")
		}
		time.Sleep(5 * time.Millisecond)
	}

	reg := obs.NewRegistry()
	router, err := failover.New(failover.Options{
		Nodes:   []string{pts.URL, rts.URL},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := router.ProbeOnce(context.Background())
	if st.Primary != pts.URL {
		t.Fatalf("elected %q, want the original primary %q", st.Primary, pts.URL)
	}

	fts := httptest.NewServer(router)
	t.Cleanup(fts.Close)
	resp := put(t, fts.URL, "prot", "via-router", docs[1])
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("mutation answered %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != pts.URL+"/v1/collections/prot/documents/via-router" {
		t.Fatalf("mutation Location = %q", loc)
	}

	// Reads spread over both healthy nodes.
	seen := map[string]bool{}
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	for i := 0; i < 4; i++ {
		resp, err := client.Get(fts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTemporaryRedirect {
			t.Fatalf("read answered %d, want 307", resp.StatusCode)
		}
		seen[resp.Header.Get("Location")] = true
	}
	if len(seen) != 2 {
		t.Fatalf("reads did not round-robin: %v", seen)
	}

	// Promote the follower; the next probe round must re-elect. The old
	// primary is fenced by promote's own probe, so it reports "fenced" and
	// cannot win even though it still answers.
	preq, err := http.NewRequest(http.MethodPost, rts.URL+"/v1/promote", nil)
	if err != nil {
		t.Fatal(err)
	}
	presp, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d", presp.StatusCode)
	}

	st = router.ProbeOnce(context.Background())
	if st.Primary != rts.URL {
		t.Fatalf("post-promotion election: %q, want %q; nodes %+v", st.Primary, rts.URL, st.Nodes)
	}
	resp = put(t, fts.URL, "prot", "after-failover", docs[2])
	if loc := resp.Header.Get("Location"); loc != rts.URL+"/v1/collections/prot/documents/after-failover" {
		t.Fatalf("post-failover mutation Location = %q", loc)
	}

	// The status endpoint reflects the same view.
	var status failover.Status
	sresp, err := http.Get(fts.URL + "/v1/failover/status")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := jsonDecode(sresp, &status); err != nil {
		t.Fatal(err)
	}
	if status.Primary != rts.URL || len(status.Nodes) != 2 {
		t.Fatalf("status = %+v", status)
	}
}

// TestRouterNoPrimary: with every node down, mutations answer a typed 503
// and reads likewise.
func TestRouterNoPrimary(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	dead.Close() // listener gone: probe sees a connection error
	router, err := failover.New(failover.Options{Nodes: []string{dead.URL}})
	if err != nil {
		t.Fatal(err)
	}
	st := router.ProbeOnce(context.Background())
	if st.Primary != "" || st.Nodes[0].Healthy {
		t.Fatalf("probe of a dead node = %+v", st)
	}
	fts := httptest.NewServer(router)
	t.Cleanup(fts.Close)
	docs := gen.Collection(gen.Config{N: 1, Theta: 0.3, Seed: 5})
	resp := put(t, fts.URL, "prot", "x", docs[0])
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutation with no primary: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestRouterFencesRival: two nodes both claiming primary — the lower-epoch
// claimant gets poked and fences itself, so the next round has one primary.
func TestRouterFencesRival(t *testing.T) {
	docs := gen.Collection(gen.Config{N: 150, Theta: 0.3, Seed: 53})

	// Rival A: a plain primary at epoch 0.
	ast := openStore(t)
	if _, err := ast.Put("prot", "a", docs[0]); err != nil {
		t.Fatal(err)
	}
	ats := httptest.NewServer(server.NewIngest(ast, server.Config{}))
	t.Cleanup(ats.Close)

	// Rival B: same collection, epoch forced above A's via a takeover.
	bst := openStore(t)
	if _, err := bst.Put("prot", "b", docs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := bst.Takeover("prot", 3); err != nil {
		t.Fatal(err)
	}
	bts := httptest.NewServer(server.NewIngest(bst, server.Config{}))
	t.Cleanup(bts.Close)

	router, err := failover.New(failover.Options{
		Nodes:      []string{ats.URL, bts.URL},
		FenceStale: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := router.ProbeOnce(context.Background())
	if st.Primary != bts.URL {
		t.Fatalf("elected %q, want the higher-epoch %q", st.Primary, bts.URL)
	}
	// The poke must have fenced A during the round.
	if fenced, _ := ast.Fenced(); !fenced {
		t.Fatal("lower-epoch rival was not fenced")
	}
	st = router.ProbeOnce(context.Background())
	for _, ns := range st.Nodes {
		if ns.URL == ats.URL && ns.Role != "fenced" {
			t.Fatalf("rival still reports role %q", ns.Role)
		}
	}
}

func jsonDecode(resp *http.Response, out any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}
