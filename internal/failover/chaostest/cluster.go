// Package chaostest is a deterministic fault-injection harness for the
// replication/failover stack: a Cluster of in-process daemon-equivalent
// nodes (persistent store dir + real server over real HTTP) that a scripted
// scenario can kill abruptly, partition, restart and promote, while a
// seeded workload keeps a model of every acknowledged write.
//
// Determinism rules: every random choice flows from the scenario's seed;
// every wait is a condition poll against observable state (never a bare
// sleep used as synchronization); the final equivalence check replays the
// acknowledged-write model into a never-crashed reference store and demands
// bit-identical Search/TopK/Count answers over a pattern grid.
package chaostest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"context"

	"repro/internal/catalog"
	"repro/internal/gen"
	"repro/internal/ingest"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/ustring"
)

// Node is one cluster member: a store rooted in a persistent directory and
// a server over a real listener. A killed node's store is abandoned without
// Close — like SIGKILL, nothing gets a chance to flush — and the directory
// survives for a restart.
type Node struct {
	Name string
	Dir  string

	store    *ingest.Store
	srv      *server.Server
	ts       *httptest.Server
	follower *replica.Follower
	stopTail func()
	isolated atomic.Bool
	killed   bool
}

// URL is the node's current base URL (changes across restarts).
func (n *Node) URL() string { return n.ts.URL }

// Store exposes the node's ingest store for direct assertions.
func (n *Node) Store() *ingest.Store { return n.store }

// Isolate makes the node answer 503 to every request — a one-way network
// partition (inbound). Heal lifts it.
func (n *Node) Isolate() { n.isolated.Store(true) }
func (n *Node) Heal()    { n.isolated.Store(false) }

// Cluster is the scenario state: the nodes, the seeded document pool and
// the model of acknowledged writes.
type Cluster struct {
	t     *testing.T
	rng   *rand.Rand
	copts catalog.Options
	docs  []*ustring.String
	nodes map[string]*Node

	// Model maps collection → id → document for every write the cluster
	// ACKNOWLEDGED (HTTP 200). A write that was rejected or never answered
	// is not in the model; the equivalence check proves everything in the
	// model is readable.
	Model map[string]map[string]*ustring.String
}

// New seeds a cluster. All randomness (documents, workload choices) derives
// from seed, so a failing scenario replays exactly.
func New(t *testing.T, seed int64) *Cluster {
	t.Helper()
	return &Cluster{
		t:     t,
		rng:   rand.New(rand.NewSource(seed)),
		copts: catalog.Options{TauMin: 0.1, Shards: 3},
		docs:  gen.Collection(gen.Config{N: 2600, Theta: 0.3, Seed: seed}),
		nodes: make(map[string]*Node),
		Model: make(map[string]map[string]*ustring.String),
	}
}

// Node returns a member by name.
func (c *Cluster) Node(name string) *Node {
	n, ok := c.nodes[name]
	if !ok {
		c.t.Fatalf("chaostest: no node %q", name)
	}
	return n
}

// open builds a store over dir with the cluster's catalog options.
func (c *Cluster) open(dir string) *ingest.Store {
	c.t.Helper()
	st, err := ingest.Open(nil, ingest.Options{
		Dir:              dir,
		Catalog:          c.copts,
		CompactThreshold: -1,
		Logf:             c.t.Logf,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	return st
}

// serve wraps the node's server with the partition gate and starts the
// listener.
func (c *Cluster) serve(n *Node) {
	n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.isolated.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		n.srv.ServeHTTP(w, r)
	}))
}

// StartPrimary boots a fresh primary node.
func (c *Cluster) StartPrimary(name string) *Node {
	c.t.Helper()
	n := &Node{Name: name, Dir: c.t.TempDir()}
	n.store = c.open(n.Dir)
	n.srv = server.NewIngest(n.store, server.Config{})
	c.serve(n)
	c.nodes[name] = n
	c.t.Cleanup(func() { c.stop(n) })
	return n
}

// startFollowerOn attaches a follower (and replica server) to an open store.
func (c *Cluster) startFollowerOn(n *Node, primaryURL string) {
	c.t.Helper()
	f, err := replica.NewFollower(replica.FollowerOptions{
		Primary:          primaryURL,
		Store:            n.store,
		PollInterval:     2 * time.Millisecond,
		DiscoverInterval: 10 * time.Millisecond,
		MaxBackoff:       50 * time.Millisecond,
		Logf:             c.t.Logf,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	n.follower = f
	n.stopTail = func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			c.t.Error("chaostest: follower tailers did not stop")
		}
	}
	n.srv = server.NewReplica(f, server.Config{})
}

// StartFollower boots a fresh follower of another node.
func (c *Cluster) StartFollower(name, of string) *Node {
	c.t.Helper()
	n := &Node{Name: name, Dir: c.t.TempDir()}
	n.store = c.open(n.Dir)
	c.startFollowerOn(n, c.Node(of).URL())
	c.serve(n)
	c.nodes[name] = n
	c.t.Cleanup(func() { c.stop(n) })
	return n
}

// Kill stops a node the hard way: client connections are severed, the
// listener closed, tailers cancelled — and the store is ABANDONED, not
// closed, so nothing flushes that had not already reached disk. The
// directory stays for a restart.
func (c *Cluster) Kill(name string) {
	c.t.Helper()
	n := c.Node(name)
	if n.killed {
		c.t.Fatalf("chaostest: node %q killed twice", name)
	}
	n.killed = true
	n.ts.CloseClientConnections()
	n.ts.Listener.Close()
	if n.stopTail != nil {
		n.stopTail()
		n.stopTail = nil
	}
	c.t.Logf("chaostest: killed %s", name)
}

// RestartAsFollower reopens a killed node's directory — running the WAL
// recovery path, torn tails and all — and brings it back as a follower of
// another node. The epoch machinery does the rest: the node's stale local
// epoch forces a re-bootstrap from the new primary's snapshot.
func (c *Cluster) RestartAsFollower(name, of string) *Node {
	c.t.Helper()
	old := c.Node(name)
	if !old.killed {
		c.t.Fatalf("chaostest: restart of %q, which is still running", name)
	}
	n := &Node{Name: name, Dir: old.Dir}
	n.store = c.open(n.Dir)
	c.startFollowerOn(n, c.Node(of).URL())
	c.serve(n)
	c.nodes[name] = n
	c.t.Cleanup(func() { c.stop(n) })
	return n
}

// stop is the end-of-test cleanup for one node object; killed nodes were
// already torn down and their stores deliberately stay unclosed.
func (c *Cluster) stop(n *Node) {
	if n.killed {
		return
	}
	n.killed = true
	if n.stopTail != nil {
		n.stopTail()
	}
	n.ts.Close()
	n.store.Close()
}

// Promote POSTs /v1/promote on a follower node and requires success.
func (c *Cluster) Promote(name string) server.PromoteResponse {
	c.t.Helper()
	n := c.Node(name)
	resp, err := http.Post(n.URL()+"/v1/promote", "application/json", nil)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("promote %s: status %d: %s", name, resp.StatusCode, body)
	}
	var pr server.PromoteResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		c.t.Fatalf("promote %s: bad body %q: %v", name, body, err)
	}
	c.t.Logf("chaostest: promoted %s: %s", name, body)
	return pr
}

// Put writes one document through a node's public API and records the ack.
func (c *Cluster) Put(node, coll, id string, d *ustring.String) {
	c.t.Helper()
	var body bytes.Buffer
	if err := ustring.Marshal(&body, d); err != nil {
		c.t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut,
		fmt.Sprintf("%s/v1/collections/%s/documents/%s", c.Node(node).URL(), coll, id), &body)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("put %s/%s on %s: status %d", coll, id, node, resp.StatusCode)
	}
	if c.Model[coll] == nil {
		c.Model[coll] = map[string]*ustring.String{}
	}
	c.Model[coll][id] = d
}

// mutationError is the typed error body a rejected mutation carries.
type mutationError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// PutExpectStale attempts a write that MUST be rejected with the typed 409
// stale_epoch — the fenced-primary contract — and returns the body.
func (c *Cluster) PutExpectStale(node, coll, id string, d *ustring.String) mutationError {
	c.t.Helper()
	var body bytes.Buffer
	if err := ustring.Marshal(&body, d); err != nil {
		c.t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut,
		fmt.Sprintf("%s/v1/collections/%s/documents/%s", c.Node(node).URL(), coll, id), &body)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusConflict {
		c.t.Fatalf("put %s/%s on %s: status %d, want 409; body %s", coll, id, node, resp.StatusCode, raw)
	}
	var me mutationError
	if err := json.Unmarshal(raw, &me); err != nil {
		c.t.Fatalf("409 body %q: %v", raw, err)
	}
	if me.Code != "stale_epoch" {
		c.t.Fatalf("put %s/%s on %s: 409 code %q, want stale_epoch", coll, id, node, me.Code)
	}
	return me
}

// Delete removes one document through a node's public API.
func (c *Cluster) Delete(node, coll, id string) {
	c.t.Helper()
	req, err := http.NewRequest(http.MethodDelete,
		fmt.Sprintf("%s/v1/collections/%s/documents/%s", c.Node(node).URL(), coll, id), nil)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("delete %s/%s on %s: status %d", coll, id, node, resp.StatusCode)
	}
	delete(c.Model[coll], id)
}

// Compact folds every collection on a node.
func (c *Cluster) Compact(node string) {
	c.t.Helper()
	resp, err := http.Post(c.Node(node).URL()+"/v1/compact", "application/json", nil)
	if err != nil {
		c.t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("compact on %s: status %d", node, resp.StatusCode)
	}
}

// RandomOps drives n seeded mutations against one collection on a node:
// mostly puts over a bounded id space (so deletes and replacements both
// happen), some deletes of ids known to exist, an occasional compaction.
// Every acknowledged op lands in the model. Deterministic: the id picked
// for deletion comes from the sorted key list, never map iteration order.
func (c *Cluster) RandomOps(node, coll string, n int) {
	c.t.Helper()
	for i := 0; i < n; i++ {
		byID := c.Model[coll]
		switch r := c.rng.Float64(); {
		case r < 0.62 || len(byID) == 0:
			id := fmt.Sprintf("doc-%03d", c.rng.Intn(40))
			c.Put(node, coll, id, c.docs[c.rng.Intn(len(c.docs))])
		case r < 0.88:
			ids := sortedKeys(byID)
			c.Delete(node, coll, ids[c.rng.Intn(len(ids))])
		default:
			c.Compact(node)
		}
	}
}

func sortedKeys(m map[string]*ustring.String) []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// WaitFor polls cond until it holds; the deadline is failure detection,
// not synchronization.
func (c *Cluster) WaitFor(what string, cond func() bool) {
	c.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			c.t.Fatalf("chaostest: timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Barrier waits until the named follower has applied every acknowledged
// write: caught up per its own accounting, at the feeding primary's head
// for every model collection, and holding exactly the model's documents.
func (c *Cluster) Barrier(follower, primary string) {
	c.t.Helper()
	f := c.Node(follower).follower
	fst := c.Node(follower).store
	pst := c.Node(primary).store
	c.WaitFor(fmt.Sprintf("%s caught up to %s", follower, primary), func() bool {
		if !f.CaughtUp() {
			return false
		}
		status := map[string]replica.CollectionLag{}
		for _, cs := range f.Status() {
			status[cs.Collection] = cs
		}
		for coll, byID := range c.Model {
			pos, err := pst.WALPos(coll)
			if err != nil {
				return false
			}
			cs, ok := status[coll]
			if !ok || cs.Epoch != pos.Epoch || cs.AppliedOffset < pos.Offset {
				return false
			}
			v, ok := fst.Get(coll)
			if !ok || v.Docs() != len(byID) {
				return false
			}
			for id := range byID {
				if _, ok := v.DocNumber(id); !ok {
					return false
				}
			}
		}
		return true
	})
}

// AssertEquivalence is the zero-loss, zero-torn-reads check: for every
// model collection, a never-crashed reference store is built by replaying
// the acknowledged writes, and the node must answer an entire
// Search/TopK/Count grid bit-identically — positions, probabilities, doc
// numbers — to that reference.
func (c *Cluster) AssertEquivalence(node string) {
	c.t.Helper()
	st := c.Node(node).store
	for _, coll := range sortedColls(c.Model) {
		byID := c.Model[coll]
		ref := c.open(c.t.TempDir())
		for _, id := range sortedKeys(byID) {
			if _, err := ref.Put(coll, id, byID[id]); err != nil {
				c.t.Fatal(err)
			}
		}
		rv, ok := ref.Get(coll)
		if !ok {
			c.t.Fatalf("reference store lost collection %q", coll)
		}
		nv, ok := st.Get(coll)
		if !ok {
			c.t.Fatalf("node %s lost collection %q", node, coll)
		}
		c.assertViewsIdentical(coll, rv, nv)
		ref.Close()
	}
}

// assertViewsIdentical compares two views over the standard pattern grid.
func (c *Cluster) assertViewsIdentical(coll string, want, got *ingest.View) {
	c.t.Helper()
	if want.Docs() != got.Docs() {
		c.t.Fatalf("%s: reference holds %d documents, node %d", coll, want.Docs(), got.Docs())
	}
	hits := 0
	for _, m := range []int{2, 4} {
		for _, p := range gen.CollectionPatterns(c.docs, 6, m, 131) {
			for _, tau := range []float64{0.1, 0.15, 0.2} {
				w, err := want.Search(p, tau)
				if err != nil {
					c.t.Fatal(err)
				}
				g, err := got.Search(p, tau)
				if err != nil {
					c.t.Fatal(err)
				}
				if !reflect.DeepEqual(g, w) && !(len(g) == 0 && len(w) == 0) {
					c.t.Fatalf("%s: Search(%q, %v): node %v, reference %v", coll, p, tau, g, w)
				}
				wn, err := want.Count(p, tau)
				if err != nil {
					c.t.Fatal(err)
				}
				gn, err := got.Count(p, tau)
				if err != nil {
					c.t.Fatal(err)
				}
				if gn != wn {
					c.t.Fatalf("%s: Count(%q, %v) = %d on node, %d on reference", coll, p, tau, gn, wn)
				}
				hits += len(w)
			}
			for _, k := range []int{1, 3, 10} {
				w, err := want.TopK(p, k)
				if err != nil {
					c.t.Fatal(err)
				}
				g, err := got.TopK(p, k)
				if err != nil {
					c.t.Fatal(err)
				}
				if !reflect.DeepEqual(g, w) && !(len(g) == 0 && len(w) == 0) {
					c.t.Fatalf("%s: TopK(%q, %d): node %v, reference %v", coll, p, k, g, w)
				}
			}
		}
	}
	if hits == 0 {
		c.t.Fatalf("%s: no query returned hits; the equivalence check was vacuous", coll)
	}
}

func sortedColls(m map[string]map[string]*ustring.String) []string {
	colls := make([]string, 0, len(m))
	for coll := range m {
		colls = append(colls, coll)
	}
	sort.Strings(colls)
	return colls
}

// Role fetches a node's self-reported effective role from /v1/stats.
func (c *Cluster) Role(node string) string {
	c.t.Helper()
	resp, err := http.Get(c.Node(node).URL() + "/v1/stats")
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Role string `json:"role"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		c.t.Fatal(err)
	}
	return st.Role
}

// Step is one named scenario action.
type Step struct {
	Name string
	Do   func(c *Cluster)
}

// Run executes the scripted steps in order, logging each transition so a
// failure names the exact step that broke.
func (c *Cluster) Run(steps ...Step) {
	c.t.Helper()
	for i, s := range steps {
		c.t.Logf("chaostest: step %d/%d: %s", i+1, len(steps), s.Name)
		s.Do(c)
	}
}
