package chaostest

import (
	"fmt"
	"net/http"
	"testing"
)

// TestChaosKillPrimaryPromote is the kill-the-primary acceptance scenario:
// a seeded put/delete/compact workload runs against the primary while a
// follower tails it; after an explicit catch-up barrier the primary is
// killed abruptly (store abandoned, nothing flushed); the follower is
// promoted and must serve every acknowledged write; the old primary is
// restarted from its surviving directory as a follower of the new primary
// and converges through the epoch-fenced re-bootstrap. Both nodes finish
// bit-identical to a never-crashed reference store built from the model.
func TestChaosKillPrimaryPromote(t *testing.T) {
	c := New(t, 20260808)
	var oldEpoch uint64
	c.Run(
		Step{"boot primary a with seeded load", func(c *Cluster) {
			c.StartPrimary("a")
			c.RandomOps("a", "prot", 30)
		}},
		Step{"boot follower b, bootstrap from snapshot", func(c *Cluster) {
			c.StartFollower("b", "a")
			c.Barrier("b", "a")
		}},
		Step{"churn: more load with a compaction epoch bump mid-stream", func(c *Cluster) {
			c.RandomOps("a", "prot", 15)
			c.Compact("a")
			c.RandomOps("a", "prot", 15)
		}},
		Step{"catch-up barrier: every acknowledged write replicated", func(c *Cluster) {
			c.Barrier("b", "a")
			pos, err := c.Node("a").Store().WALPos("prot")
			if err != nil {
				t.Fatal(err)
			}
			oldEpoch = pos.Epoch
		}},
		Step{"SIGKILL the primary", func(c *Cluster) {
			c.Kill("a")
		}},
		Step{"promote b; epoch must pass the dead primary's", func(c *Cluster) {
			pr := c.Promote("b")
			if len(pr.Collections) != 1 || pr.Collections[0].Epoch <= oldEpoch {
				t.Fatalf("promotion = %+v, want epoch above %d", pr.Collections, oldEpoch)
			}
			// The old primary is dead: the drain cannot have completed and
			// the synchronous fencing probe cannot have landed.
			if pr.FencedOldPrimary != 0 {
				t.Fatalf("fenced a dead primary? %+v", pr)
			}
			if got := c.Role("b"); got != "primary" {
				t.Fatalf("promoted node reports role %q", got)
			}
		}},
		Step{"zero acknowledged-write loss on the new primary", func(c *Cluster) {
			c.AssertEquivalence("b")
		}},
		Step{"new primary accepts fresh writes", func(c *Cluster) {
			c.RandomOps("b", "prot", 15)
		}},
		Step{"restart old primary as follower of b", func(c *Cluster) {
			c.RestartAsFollower("a", "b")
			c.Barrier("a", "b")
			if got := c.Role("a"); got != "replica" {
				t.Fatalf("restarted node reports role %q", got)
			}
		}},
		Step{"both nodes bit-identical to the never-crashed reference", func(c *Cluster) {
			c.AssertEquivalence("b")
			c.AssertEquivalence("a")
		}},
	)
}

// TestChaosSplitBrainFenced is the split-brain regression: promotion with
// the old primary still alive fences it synchronously; a client still
// pointed at the demoted node gets the typed 409 stale_epoch and its write
// appears in no view, pinned via /v1/stats roles and both stores.
func TestChaosSplitBrainFenced(t *testing.T) {
	c := New(t, 7771)
	c.Run(
		Step{"boot pair with load, catch up", func(c *Cluster) {
			c.StartPrimary("a")
			c.RandomOps("a", "prot", 25)
			c.StartFollower("b", "a")
			c.Barrier("b", "a")
		}},
		Step{"promote b with a alive: fencing probe must land", func(c *Cluster) {
			pr := c.Promote("b")
			if pr.FencedOldPrimary != 1 {
				t.Fatalf("fenced_old_primary = %d, want 1; %+v", pr.FencedOldPrimary, pr)
			}
		}},
		Step{"demoted primary answers 409 stale_epoch, roles pinned", func(c *Cluster) {
			me := c.PutExpectStale("a", "prot", "ghost", c.docs[0])
			if me.Error == "" {
				t.Fatal("409 with an empty error message")
			}
			if got := c.Role("a"); got != "fenced" {
				t.Fatalf("demoted primary reports role %q, want fenced", got)
			}
			if got := c.Role("b"); got != "primary" {
				t.Fatalf("promoted node reports role %q, want primary", got)
			}
		}},
		Step{"the rejected write is in no reader's view", func(c *Cluster) {
			for _, node := range []string{"a", "b"} {
				if v, ok := c.Node(node).Store().Get("prot"); ok {
					if _, found := v.DocNumber("ghost"); found {
						t.Fatalf("ghost write visible on %s", node)
					}
				}
			}
			c.AssertEquivalence("b")
		}},
	)
}

// TestChaosPartitionedPromotion covers promotion when the old primary is
// unreachable but NOT dead — a network partition. The promote-time fencing
// probe cannot land, so for a window the healed old primary still believes
// it is a primary; the first fencing contact (here: one feed poll carrying
// the new epoch, exactly what the failover router sends a rival) fences it,
// and the write it would have accepted into a dead lineage is refused.
func TestChaosPartitionedPromotion(t *testing.T) {
	c := New(t, 424242)
	c.Run(
		Step{"boot pair with load, catch up", func(c *Cluster) {
			c.StartPrimary("a")
			c.RandomOps("a", "prot", 20)
			c.StartFollower("b", "a")
			c.Barrier("b", "a")
		}},
		Step{"partition a, promote b: fencing probe cannot land", func(c *Cluster) {
			c.Node("a").Isolate()
			pr := c.Promote("b")
			if pr.FencedOldPrimary != 0 {
				t.Fatalf("fencing probe crossed a partition: %+v", pr)
			}
		}},
		Step{"heal: a still claims primary — split brain is open", func(c *Cluster) {
			c.Node("a").Heal()
			if got := c.Role("a"); got != "primary" {
				t.Fatalf("pre-fence role %q, want primary (the dangerous state)", got)
			}
		}},
		Step{"one fencing poke closes it", func(c *Cluster) {
			pos, err := c.Node("b").Store().WALPos("prot")
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Get(fmt.Sprintf(
				"%s/v1/replication/wal?collection=prot&epoch=%d&from=0",
				c.Node("a").URL(), pos.Epoch))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusConflict {
				t.Fatalf("fencing poke answered %d, want 409", resp.StatusCode)
			}
			c.PutExpectStale("a", "prot", "ghost", c.docs[0])
			if got := c.Role("a"); got != "fenced" {
				t.Fatalf("post-fence role %q", got)
			}
		}},
	)
}
