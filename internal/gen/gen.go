// Package gen synthesises uncertain-string datasets with the statistics of
// the paper's evaluation corpus (Section 8.1).
//
// The paper starts from a concatenated human+mouse protein sequence
// (|Σ| = 22), breaks it into strings whose lengths follow roughly a normal
// distribution on [20, 45], and derives a character-level pdf at each
// position from the letter frequencies of an edit-distance-4 neighbourhood;
// a fraction θ of the positions end up uncertain, with about five choices
// per uncertain position. The real corpus is not distributable, so this
// package generates sequences and neighbourhood-style pdfs with the same
// published statistics. All output is deterministic under Config.Seed.
package gen

import (
	"math"
	"math/rand"

	"repro/internal/ustring"
)

// ProteinAlphabet is the 22-letter amino-acid alphabet used throughout the
// paper's evaluation (20 standard residues plus the ambiguity codes B and Z).
var ProteinAlphabet = []byte("ACDEFGHIKLMNPQRSTVWYBZ")

// Config controls dataset generation.
type Config struct {
	// N is the total number of positions to generate (the paper's n).
	N int
	// Theta is the fraction of uncertain positions (the paper's θ, 0.1–0.5).
	Theta float64
	// MeanChoices is the average number of character choices at an uncertain
	// position. The paper sets 5. Values are clamped to [2, 8].
	MeanChoices float64
	// MinLen, MaxLen bound the per-string lengths of a collection; the paper
	// uses a roughly normal distribution on [20, 45].
	MinLen, MaxLen int
	// Correlations, if positive, adds that many random character-level
	// correlations (Section 3.3) to each generated string.
	Correlations int
	// Seed makes the dataset reproducible.
	Seed int64
	// Alphabet defaults to ProteinAlphabet.
	Alphabet []byte
}

func (c Config) withDefaults() Config {
	if c.MeanChoices == 0 {
		c.MeanChoices = 5
	}
	if c.MinLen == 0 {
		c.MinLen = 20
	}
	if c.MaxLen == 0 {
		c.MaxLen = 45
	}
	if len(c.Alphabet) == 0 {
		c.Alphabet = ProteinAlphabet
	}
	return c
}

// Single generates one uncertain string with exactly cfg.N positions — the
// substrate of the substring-search experiments (Figures 7 and 9).
func Single(cfg Config) *ustring.String {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	return generate(rng, cfg, cfg.N)
}

// Collection generates a collection of uncertain strings with cfg.N
// positions in total, individual lengths approximately normal on
// [MinLen, MaxLen] — the substrate of the string-listing experiments
// (Figure 8).
func Collection(cfg Config) []*ustring.String {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var docs []*ustring.String
	remaining := cfg.N
	for remaining > 0 {
		mean := float64(cfg.MinLen+cfg.MaxLen) / 2
		sd := float64(cfg.MaxLen-cfg.MinLen) / 6
		l := int(math.Round(rng.NormFloat64()*sd + mean))
		if l < cfg.MinLen {
			l = cfg.MinLen
		}
		if l > cfg.MaxLen {
			l = cfg.MaxLen
		}
		if l > remaining {
			l = remaining
		}
		docs = append(docs, generate(rng, cfg, l))
		remaining -= l
	}
	return docs
}

// generate builds one uncertain string of n positions.
func generate(rng *rand.Rand, cfg Config, n int) *ustring.String {
	s := &ustring.String{Pos: make([]ustring.Position, n)}
	for i := 0; i < n; i++ {
		base := cfg.Alphabet[rng.Intn(len(cfg.Alphabet))]
		if rng.Float64() >= cfg.Theta {
			s.Pos[i] = ustring.Position{{Char: base, Prob: 1}}
			continue
		}
		s.Pos[i] = uncertainPosition(rng, cfg, base)
	}
	addCorrelations(rng, s, cfg.Correlations)
	return s
}

// uncertainPosition emulates the paper's neighbourhood-derived pdf: the
// "true" base character receives the largest share of the mass and the
// remaining choices receive geometrically decaying shares, the way letter
// frequencies in an edit-distance neighbourhood of a string concentrate
// around the original letter.
func uncertainPosition(rng *rand.Rand, cfg Config, base byte) ustring.Position {
	k := int(math.Round(rng.NormFloat64()*1.2 + cfg.MeanChoices))
	if k < 2 {
		k = 2
	}
	if k > 8 {
		k = 8
	}
	if k > len(cfg.Alphabet) {
		k = len(cfg.Alphabet)
	}
	// Pick k distinct characters, base first.
	chars := make([]byte, 0, k)
	chars = append(chars, base)
	used := map[byte]bool{base: true}
	for len(chars) < k {
		c := cfg.Alphabet[rng.Intn(len(cfg.Alphabet))]
		if !used[c] {
			used[c] = true
			chars = append(chars, c)
		}
	}
	// Geometric-ish weights with noise; the base keeps the largest weight.
	weights := make([]float64, k)
	w := 1.0
	total := 0.0
	for i := range weights {
		weights[i] = w * (0.75 + 0.5*rng.Float64())
		total += weights[i]
		w *= 0.55
	}
	pos := make(ustring.Position, k)
	acc := 0.0
	for i, c := range chars {
		p := weights[i] / total
		// Round to 4 decimals for stable text encoding; give the remainder
		// to the last choice so the position sums to exactly 1.
		p = math.Round(p*1e4) / 1e4
		if i == k-1 {
			p = 1 - acc
		}
		acc += p
		pos[i] = ustring.Choice{Char: c, Prob: p}
	}
	return pos
}

// addCorrelations wires count random correlations into s: a character at an
// uncertain position is made dependent on a character at another position,
// with pr+ and pr− spread around its base probability.
func addCorrelations(rng *rand.Rand, s *ustring.String, count int) {
	if count <= 0 || s.Len() < 2 {
		return
	}
	var uncertain []int
	for i, pos := range s.Pos {
		if len(pos) > 1 {
			uncertain = append(uncertain, i)
		}
	}
	if len(uncertain) == 0 {
		return
	}
	taken := map[int]bool{}
	for c := 0; c < count; c++ {
		at := uncertain[rng.Intn(len(uncertain))]
		if taken[at] {
			continue
		}
		dep := rng.Intn(s.Len())
		if dep == at {
			continue
		}
		taken[at] = true
		choice := s.Pos[at][rng.Intn(len(s.Pos[at]))]
		depChoice := s.Pos[dep][rng.Intn(len(s.Pos[dep]))]
		base := choice.Prob
		delta := base * (0.2 + 0.3*rng.Float64())
		plus := base + delta
		minus := base - delta
		if plus > 1 {
			plus = 1
		}
		if minus < 0 {
			minus = 0
		}
		s.Corr = append(s.Corr, ustring.Correlation{
			At: at, Char: choice.Char,
			DepAt: dep, DepChar: depChoice.Char,
			ProbWhenPresent: plus, ProbWhenAbsent: minus,
		})
	}
}

// Patterns samples count query patterns of length m from the probable worlds
// of s, so the workload contains patterns that actually occur with
// non-negligible probability (the paper queries substrings of the indexed
// data). Sampling follows the per-position pdf, which concentrates on
// high-probability substrings.
func Patterns(s *ustring.String, count, m int, seed int64) [][]byte {
	if s.Len() < m || m <= 0 || count <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, 0, count)
	for len(out) < count {
		start := rng.Intn(s.Len() - m + 1)
		p := make([]byte, m)
		for k := 0; k < m; k++ {
			p[k] = samplePos(rng, s.Pos[start+k])
		}
		out = append(out, p)
	}
	return out
}

// CollectionPatterns samples patterns from random documents of a collection.
func CollectionPatterns(docs []*ustring.String, count, m int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	var candidates []*ustring.String
	for _, d := range docs {
		if d.Len() >= m {
			candidates = append(candidates, d)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	out := make([][]byte, 0, count)
	for len(out) < count {
		d := candidates[rng.Intn(len(candidates))]
		start := rng.Intn(d.Len() - m + 1)
		p := make([]byte, m)
		for k := 0; k < m; k++ {
			p[k] = samplePos(rng, d.Pos[start+k])
		}
		out = append(out, p)
	}
	return out
}

// samplePos draws one character from a position's pdf.
func samplePos(rng *rand.Rand, pos ustring.Position) byte {
	r := rng.Float64()
	acc := 0.0
	for _, c := range pos {
		acc += c.Prob
		if r < acc {
			return c.Char
		}
	}
	return pos[len(pos)-1].Char
}
