package gen

import (
	"math"
	"testing"
)

func TestSingleBasicShape(t *testing.T) {
	s := Single(Config{N: 1000, Theta: 0.3, Seed: 1})
	if s.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("generated string invalid: %v", err)
	}
}

func TestSingleDeterministicUnderSeed(t *testing.T) {
	a := Single(Config{N: 500, Theta: 0.2, Seed: 42})
	b := Single(Config{N: 500, Theta: 0.2, Seed: 42})
	for i := range a.Pos {
		if len(a.Pos[i]) != len(b.Pos[i]) {
			t.Fatalf("position %d differs between runs", i)
		}
		for k := range a.Pos[i] {
			if a.Pos[i][k] != b.Pos[i][k] {
				t.Fatalf("position %d choice %d differs", i, k)
			}
		}
	}
	c := Single(Config{N: 500, Theta: 0.2, Seed: 43})
	same := true
	for i := range a.Pos {
		if len(a.Pos[i]) != len(c.Pos[i]) || a.Pos[i][0] != c.Pos[i][0] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical output")
	}
}

func TestThetaControlsUncertainty(t *testing.T) {
	for _, theta := range []float64{0.1, 0.3, 0.5} {
		s := Single(Config{N: 20000, Theta: theta, Seed: 7})
		uncertain := 0
		for _, pos := range s.Pos {
			if len(pos) > 1 {
				uncertain++
			}
		}
		frac := float64(uncertain) / float64(s.Len())
		if math.Abs(frac-theta) > 0.02 {
			t.Errorf("theta=%v: uncertain fraction = %v", theta, frac)
		}
	}
}

func TestMeanChoicesNearFive(t *testing.T) {
	s := Single(Config{N: 50000, Theta: 0.5, Seed: 11})
	total, count := 0, 0
	for _, pos := range s.Pos {
		if len(pos) > 1 {
			total += len(pos)
			count++
		}
	}
	mean := float64(total) / float64(count)
	if mean < 4.2 || mean > 5.8 {
		t.Errorf("mean choices = %v, want ≈5 (paper Section 8.1)", mean)
	}
}

func TestAlphabetRespected(t *testing.T) {
	s := Single(Config{N: 5000, Theta: 0.4, Seed: 3})
	allowed := map[byte]bool{}
	for _, c := range ProteinAlphabet {
		allowed[c] = true
	}
	for i, pos := range s.Pos {
		for _, c := range pos {
			if !allowed[c.Char] {
				t.Fatalf("position %d uses %q outside the protein alphabet", i, c.Char)
			}
		}
	}
	if len(ProteinAlphabet) != 22 {
		t.Errorf("|Σ| = %d, want 22 per the paper", len(ProteinAlphabet))
	}
}

func TestCollectionLengths(t *testing.T) {
	docs := Collection(Config{N: 5000, Theta: 0.2, Seed: 5})
	total := 0
	for i, d := range docs {
		total += d.Len()
		if err := d.Validate(); err != nil {
			t.Fatalf("doc %d invalid: %v", i, err)
		}
		// All docs except possibly the last obey the length bounds.
		if i < len(docs)-1 && (d.Len() < 20 || d.Len() > 45) {
			t.Errorf("doc %d length %d outside [20,45]", i, d.Len())
		}
	}
	if total != 5000 {
		t.Errorf("total positions = %d, want 5000", total)
	}
}

func TestCorrelationsGenerated(t *testing.T) {
	s := Single(Config{N: 2000, Theta: 0.5, Correlations: 10, Seed: 9})
	if err := s.Validate(); err != nil {
		t.Fatalf("correlated string invalid: %v", err)
	}
	if len(s.Corr) == 0 {
		t.Error("no correlations generated")
	}
	for _, c := range s.Corr {
		if c.ProbWhenPresent < c.ProbWhenAbsent {
			t.Errorf("pr+ %v < pr− %v; generator promised positive correlation",
				c.ProbWhenPresent, c.ProbWhenAbsent)
		}
	}
}

func TestPatterns(t *testing.T) {
	s := Single(Config{N: 3000, Theta: 0.3, Seed: 13})
	ps := Patterns(s, 50, 8, 17)
	if len(ps) != 50 {
		t.Fatalf("len(patterns) = %d", len(ps))
	}
	nonZero := 0
	for _, p := range ps {
		if len(p) != 8 {
			t.Fatalf("pattern length %d", len(p))
		}
		// Patterns are sampled from the pdfs, so most should have positive
		// occurrence probability somewhere.
		if len(s.MatchPositions(p, 0)) > 0 {
			nonZero++
		}
	}
	if nonZero < 40 {
		t.Errorf("only %d/50 sampled patterns occur with positive probability", nonZero)
	}
}

func TestPatternsEdgeCases(t *testing.T) {
	s := Single(Config{N: 10, Theta: 0.2, Seed: 1})
	if got := Patterns(s, 5, 20, 1); got != nil {
		t.Error("pattern longer than the string must yield nil")
	}
	if got := Patterns(s, 0, 3, 1); got != nil {
		t.Error("count=0 must yield nil")
	}
}

func TestCollectionPatterns(t *testing.T) {
	docs := Collection(Config{N: 2000, Theta: 0.2, Seed: 19})
	ps := CollectionPatterns(docs, 20, 6, 23)
	if len(ps) != 20 {
		t.Fatalf("len = %d", len(ps))
	}
	for _, p := range ps {
		if len(p) != 6 {
			t.Fatalf("pattern length %d", len(p))
		}
	}
}
