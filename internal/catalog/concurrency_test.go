package catalog

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/gen"
)

// TestConcurrentCatalogQueries hammers one shared collection with mixed
// Search/TopK/Count traffic from many goroutines while collections are
// concurrently added to the catalog. Run with -race; every result must match
// the serial baseline.
func TestConcurrentCatalogQueries(t *testing.T) {
	docs := testDocs(t, 2000, 61)
	c := New(Options{TauMin: 0.1, Shards: 4})
	col, err := c.Add("hammer", docs)
	if err != nil {
		t.Fatal(err)
	}
	pats := gen.CollectionPatterns(docs, 16, 4, 67)

	type baseline struct {
		hits  []DocHit
		top   []DocHit
		count int
	}
	want := make([]baseline, len(pats))
	for i, p := range pats {
		if want[i].hits, err = col.Search(p, 0.15); err != nil {
			t.Fatal(err)
		}
		if want[i].top, err = col.TopK(p, 3); err != nil {
			t.Fatal(err)
		}
		if want[i].count, err = col.Count(p, 0.15); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 15; round++ {
				i := (w*5 + round) % len(pats)
				p := pats[i]
				switch round % 3 {
				case 0:
					got, err := col.Search(p, 0.15)
					if err != nil || !reflect.DeepEqual(got, want[i].hits) {
						errs <- "Search mismatch"
						return
					}
				case 1:
					got, err := col.TopK(p, 3)
					if err != nil || !reflect.DeepEqual(got, want[i].top) {
						errs <- "TopK mismatch"
						return
					}
				default:
					got, err := col.Count(p, 0.15)
					if err != nil || got != want[i].count {
						errs <- "Count mismatch"
						return
					}
				}
			}
		}(w)
	}
	// Concurrent catalog mutation: lookups and additions must not race with
	// the query traffic above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := c.Add("side", docs[:1]); err != nil {
				errs <- "Add failed"
				return
			}
			if _, ok := c.Get("hammer"); !ok {
				errs <- "Get lost the collection"
				return
			}
			c.Names()
			c.Stats()
		}
	}()
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
