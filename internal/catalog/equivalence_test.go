package catalog

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/ustring"
)

// TestShardedMatchesSingleIndex: for a single-document collection, a 4-shard
// catalog must return bit-identical results — positions and probabilities —
// to the unsharded core.Index built directly over the same document. The
// document is always indexed whole, so no floating-point drift is tolerated.
func TestShardedMatchesSingleIndex(t *testing.T) {
	s := gen.Single(gen.Config{N: 4000, Theta: 0.35, Seed: 31})
	single, err := core.Build(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	col := testCatalog(t, []*ustring.String{s}, 4)

	for _, m := range []int{2, 4, 8, 16} {
		for _, p := range gen.Patterns(s, 10, m, 37) {
			for _, tau := range []float64{0.1, 0.15, 0.3} {
				want := directHits(t, single, 0, p, tau)
				got, err := col.Search(p, tau)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("Search(%q, %v): sharded %v, single %v", p, tau, got, want)
				}
				n, err := col.Count(p, tau)
				if err != nil {
					t.Fatal(err)
				}
				if n != len(want) {
					t.Fatalf("Count(%q, %v) = %d, want %d", p, tau, n, len(want))
				}
			}
			top, err := single.SearchTopK(p, 5)
			if err != nil {
				t.Fatal(err)
			}
			wantTop := make([]DocHit, 0, len(top))
			for _, h := range top {
				wantTop = append(wantTop, DocHit{Doc: 0, Pos: int(h.Orig), Prob: h.Prob()})
			}
			sort.Slice(wantTop, func(a, b int) bool { return hitLess(wantTop[a], wantTop[b]) })
			gotTop, err := col.TopK(p, 5)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotTop, wantTop) && !(len(gotTop) == 0 && len(wantTop) == 0) {
				t.Fatalf("TopK(%q): sharded %v, single %v", p, gotTop, wantTop)
			}
		}
	}
}

// directHits runs SearchHits on a bare index and normalises to the
// catalog's (doc, pos) order for comparison.
func directHits(t *testing.T, ix *core.Index, doc int, p []byte, tau float64) []DocHit {
	t.Helper()
	hits, err := ix.SearchHits(p, tau)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]DocHit, 0, len(hits))
	for _, h := range hits {
		out = append(out, DocHit{Doc: doc, Pos: int(h.Orig), Prob: h.Prob()})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Pos < out[b].Pos })
	if len(out) == 0 {
		return nil
	}
	return out
}

// TestShardCountEquivalence: the acceptance test — a batch of queries
// against a 4-shard catalog must return exactly the same hits as the same
// queries against the unsharded (1-shard) catalog over the same collection,
// and as the per-document indexes built individually.
func TestShardCountEquivalence(t *testing.T) {
	docs := testDocs(t, 2500, 41)
	unsharded := testCatalog(t, docs, 1)
	sharded := testCatalog(t, docs, 4)
	uneven := testCatalog(t, docs, 7)

	// The same per-document truth, built outside the catalog.
	direct := make([]*core.Index, len(docs))
	for i, d := range docs {
		ix, err := core.Build(d, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		direct[i] = ix
	}

	checked := 0
	for _, m := range []int{2, 3, 5, 8} {
		for _, p := range gen.CollectionPatterns(docs, 12, m, 43) {
			for _, tau := range []float64{0.1, 0.2} {
				want, err := unsharded.Search(p, tau)
				if err != nil {
					t.Fatal(err)
				}
				var fromDirect []DocHit
				for i, ix := range direct {
					fromDirect = append(fromDirect, directHits(t, ix, i, p, tau)...)
				}
				if !reflect.DeepEqual(want, fromDirect) && !(len(want) == 0 && len(fromDirect) == 0) {
					t.Fatalf("unsharded catalog diverges from direct indexes on %q", p)
				}
				for name, col := range map[string]*Collection{"4-shard": sharded, "7-shard": uneven} {
					got, err := col.Search(p, tau)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s Search(%q, %v) = %v, want %v", name, p, tau, got, want)
					}
					wantN, err := unsharded.Count(p, tau)
					if err != nil {
						t.Fatal(err)
					}
					gotN, err := col.Count(p, tau)
					if err != nil {
						t.Fatal(err)
					}
					if gotN != wantN || gotN != len(want) {
						t.Fatalf("%s Count(%q, %v) = %d, want %d (= %d hits)", name, p, tau, gotN, wantN, len(want))
					}
				}
				checked++
			}
			for _, k := range []int{1, 3, 10} {
				want, err := unsharded.TopK(p, k)
				if err != nil {
					t.Fatal(err)
				}
				for name, col := range map[string]*Collection{"4-shard": sharded, "7-shard": uneven} {
					got, err := col.TopK(p, k)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s TopK(%q, %d) = %v, want %v", name, p, k, got, want)
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no queries checked")
	}
}

// TestTopKMatchesBruteForce: the heap merge must agree with sorting the full
// threshold result set at tau = tauMin.
func TestTopKMatchesBruteForce(t *testing.T) {
	docs := testDocs(t, 1500, 53)
	col := testCatalog(t, docs, 4)
	for _, m := range []int{2, 4} {
		for _, p := range gen.CollectionPatterns(docs, 6, m, 59) {
			all, err := col.Search(p, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			sort.Slice(all, func(a, b int) bool { return hitLess(all[a], all[b]) })
			for _, k := range []int{1, 2, 5, 100} {
				want := all
				if len(want) > k {
					want = want[:k]
				}
				got, err := col.TopK(p, k)
				if err != nil {
					t.Fatal(err)
				}
				// TopK completeness holds down to tauMin; Search at
				// tau = tauMin excludes hits within Eps of the threshold,
				// so compare only the common prefix when TopK found more.
				if len(got) < len(want) {
					t.Fatalf("TopK(%q, %d) returned %d hits, brute force %d", p, k, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("TopK(%q, %d)[%d] = %+v, want %+v", p, k, i, got[i], want[i])
					}
				}
			}
		}
	}
}
