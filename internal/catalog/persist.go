package catalog

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
)

// cacheFormat tags the on-disk cache layout; bump on incompatible changes.
// (Adding the Backend and Epsilon fields did not bump it: caches written
// before the fields existed decode with the zero values, which mean the
// plain backend — exactly what their document files hold.)
const cacheFormat = 1

// manifest describes one cached collection.
type manifest struct {
	Format  int
	TauMin  float64
	LongCap int
	Docs    int
	// Backend is the collection's index backend kind; empty means plain.
	Backend string
	// Epsilon is the approx backend's additive error bound; 0 elsewhere.
	// Together with Backend it reconstructs the collection's BackendSpec, so
	// a cache load verifies every document file against the same parameters
	// the collection was built with.
	Epsilon float64
}

const manifestName = "manifest.gob"

func docFileName(i int) string { return fmt.Sprintf("doc%06d.idx", i) }

// SafeName reports whether a collection name is usable as an on-disk name —
// the cache layout and the ingest layer's WAL files both embed the name in
// file paths, so path separators and hidden-file prefixes are rejected.
func SafeName(name string) error {
	// Dot-prefixed names are rejected too: Load skips hidden directories, so
	// such a collection would save fine and then silently vanish on load.
	if name == "" || strings.HasPrefix(name, ".") ||
		strings.ContainsAny(name, string(filepath.Separator)+"/") {
		return fmt.Errorf("catalog: collection name %q is not usable on disk", name)
	}
	return nil
}

// Save writes every collection's document indexes under dir (one
// subdirectory per collection), reusing the core package's index
// persistence. A later Load(dir, …) skips the transformation cost — the
// dominant share of construction time at low τmin. Cached collections (and
// per-collection document files) that are no longer part of the catalog are
// removed, so a stale cache cannot resurrect deleted data on the next Load.
func (c *Catalog) Save(dir string) error {
	// A saved catalog is also an evictable one: record the cache directory
	// so the HotCollections bound can start releasing collections that now
	// have somewhere to fault back in from.
	c.mu.Lock()
	c.cacheDir = dir
	c.mu.Unlock()
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := c.pruneCache(dir); err != nil {
		return err
	}
	for name, col := range c.colls {
		if err := SafeName(name); err != nil {
			return err
		}
		cdir := filepath.Join(dir, name)
		if err := os.MkdirAll(cdir, 0o755); err != nil {
			return fmt.Errorf("catalog: %w", err)
		}
		mf, err := os.Create(filepath.Join(cdir, manifestName))
		if err != nil {
			return fmt.Errorf("catalog: %w", err)
		}
		err = gob.NewEncoder(mf).Encode(manifest{
			Format: cacheFormat, TauMin: col.tauMin, LongCap: col.longCap,
			Docs: col.docs, Backend: col.spec.Kind, Epsilon: col.spec.Epsilon,
		})
		if cerr := mf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("catalog: writing manifest for %q: %w", name, err)
		}
		for _, shard := range col.shards {
			for _, di := range shard {
				if err := writeDocIndex(filepath.Join(cdir, docFileName(di.doc)), di.ix); err != nil {
					return fmt.Errorf("catalog: collection %q: %w", name, err)
				}
			}
		}
	}
	return nil
}

// pruneCache deletes cache subdirectories of collections the catalog no
// longer holds (recognised by their manifest — unrelated directories are
// left alone) and, for kept collections, document files beyond the current
// document count.
func (c *Catalog) pruneCache(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("catalog: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		cdir := filepath.Join(dir, e.Name())
		if _, err := os.Stat(filepath.Join(cdir, manifestName)); err != nil {
			continue // not a cached collection
		}
		col, kept := c.colls[e.Name()]
		if !kept {
			if err := os.RemoveAll(cdir); err != nil {
				return fmt.Errorf("catalog: pruning stale cache %q: %w", e.Name(), err)
			}
			continue
		}
		files, err := os.ReadDir(cdir)
		if err != nil {
			return fmt.Errorf("catalog: %w", err)
		}
		for i := col.docs; i < len(files); i++ {
			stale := filepath.Join(cdir, docFileName(i))
			if _, err := os.Stat(stale); err == nil {
				if err := os.Remove(stale); err != nil {
					return fmt.Errorf("catalog: pruning stale cache file: %w", err)
				}
			}
		}
	}
	return nil
}

func writeDocIndex(path string, ix core.Backend) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = ix.WriteTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Load rebuilds a catalog from a cache directory written by Save. The
// construction threshold is taken from each collection's manifest; opts
// controls sharding and the load worker pool. Loading rebuilds the query
// structures (suffix arrays, RMQ levels) but reuses the persisted Lemma 2
// transformations.
func Load(dir string, opts Options) (*Catalog, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	c := New(opts)
	c.cacheDir = dir
	for _, e := range entries {
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		// Directories without a manifest are not cached collections (cf.
		// pruneCache); skip rather than fail on unrelated data.
		if _, err := os.Stat(filepath.Join(dir, e.Name(), manifestName)); err != nil {
			continue
		}
		if err := c.loadCollection(filepath.Join(dir, e.Name()), e.Name()); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// loadCollection restores one cached collection, reading document indexes on
// the catalog's worker pool.
func (c *Catalog) loadCollection(cdir, name string) error {
	mf, err := os.Open(filepath.Join(cdir, manifestName))
	if err != nil {
		return fmt.Errorf("catalog: %q has no manifest: %w", name, err)
	}
	var m manifest
	err = gob.NewDecoder(mf).Decode(&m)
	mf.Close()
	if err != nil {
		return fmt.Errorf("catalog: reading manifest for %q: %w", name, err)
	}
	if m.Format != cacheFormat {
		return fmt.Errorf("catalog: %q: unsupported cache format %d (want %d)", name, m.Format, cacheFormat)
	}
	// A corrupted manifest can decode into garbage counts; bound Docs by the
	// directory's contents before allocating anything proportional to it.
	if entries, err := os.ReadDir(cdir); err != nil {
		return fmt.Errorf("catalog: %w", err)
	} else if m.Docs < 0 || m.Docs > len(entries) {
		return fmt.Errorf("catalog: %q: manifest claims %d documents but the cache holds %d files", name, m.Docs, len(entries))
	}
	spec, err := core.NewBackendSpec(m.Backend, m.Epsilon)
	if err != nil {
		return fmt.Errorf("catalog: reading manifest for %q: %w", name, err)
	}
	ixs := make([]core.Backend, m.Docs)
	err = c.runPool(m.Docs, func(i int) error {
		// Format-4 envelope files validate structurally and serve straight
		// out of the file (mmap'd under Options.MMap) — no decode, no
		// rebuild; gob files take the historical decode path.
		ix, skipped, err := core.OpenBackendFile(filepath.Join(cdir, docFileName(i)), c.opts.MMap)
		if err != nil {
			return err
		}
		if skipped {
			c.decodeSkips.Add(1)
			if c.skipsCounter != nil {
				c.skipsCounter.Inc()
			}
		}
		// A document file of the wrong representation (or, for approx, a
		// different ε) means the cache was written under different options;
		// fail so the caller rebuilds.
		if got := core.SpecOf(ix); got != spec {
			_ = core.CloseBackend(ix)
			return fmt.Errorf("cached index holds the %s backend, manifest says %s", got, spec)
		}
		ixs[i] = ix
		return nil
	})
	if err != nil {
		for _, ix := range ixs {
			if ix != nil {
				_ = core.CloseBackend(ix)
			}
		}
		return fmt.Errorf("catalog: collection %q: %w", name, err)
	}
	col := c.assemble(name, m.TauMin, m.LongCap, spec, ixs)
	col.lastUsed.Store(c.seq.Add(1))
	c.mu.Lock()
	c.colls[name] = col
	delete(c.cold, name)
	c.evictLocked()
	c.mu.Unlock()
	return nil
}
