package catalog

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestMixedBackendCatalogEquivalence: one catalog holding the same document
// set twice — once plain, once compressed — must answer the query grid
// bit-identically from both collections.
func TestMixedBackendCatalogEquivalence(t *testing.T) {
	docs := testDocs(t, 2200, 179)
	cat := New(Options{TauMin: 0.1, Shards: 3})
	plain, err := cat.Add("plain", docs)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := cat.AddWithBackend("comp", docs, core.BackendCompressed)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Backend() != core.BackendPlain || comp.Backend() != core.BackendCompressed {
		t.Fatalf("backends mislabelled: %q / %q", plain.Backend(), comp.Backend())
	}
	if 2*comp.IndexBytes() > plain.IndexBytes() {
		t.Fatalf("compressed collection %d bytes vs plain %d — less than 2× smaller",
			comp.IndexBytes(), plain.IndexBytes())
	}
	checked := 0
	for _, m := range []int{2, 3, 6} {
		for _, p := range gen.CollectionPatterns(docs, 8, m, int64(181+m)) {
			for _, tau := range []float64{0.1, 0.2} {
				want, err := plain.Search(p, tau)
				if err != nil {
					t.Fatal(err)
				}
				got, err := comp.Search(p, tau)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("Search(%q, %v): plain %v, compressed %v", p, tau, want, got)
				}
				wantN, err := plain.Count(p, tau)
				if err != nil {
					t.Fatal(err)
				}
				gotN, err := comp.Count(p, tau)
				if err != nil {
					t.Fatal(err)
				}
				if gotN != wantN {
					t.Fatalf("Count(%q, %v): plain %d, compressed %d", p, tau, wantN, gotN)
				}
				checked++
			}
			for _, k := range []int{1, 4, 20} {
				want, err := plain.TopK(p, k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := comp.TopK(p, k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("TopK(%q, %d): plain %v, compressed %v", p, k, want, got)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no queries checked")
	}
}

// TestMixedBackendSaveLoad: a catalog holding collections of both backends
// survives Save/Load with backends and answers intact.
func TestMixedBackendSaveLoad(t *testing.T) {
	docs := testDocs(t, 1200, 191)
	opts := Options{TauMin: 0.1, Shards: 2}
	cat := New(opts)
	if _, err := cat.Add("p", docs); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.AddWithBackend("z", docs, core.BackendCompressed); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := cat.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for name, backend := range map[string]string{"p": core.BackendPlain, "z": core.BackendCompressed} {
		orig, _ := cat.Get(name)
		got, ok := loaded.Get(name)
		if !ok {
			t.Fatalf("collection %q lost on load", name)
		}
		if got.Backend() != backend {
			t.Fatalf("collection %q loaded as %q, want %q", name, got.Backend(), backend)
		}
		for _, p := range gen.CollectionPatterns(docs, 4, 3, 193) {
			want, err := orig.Search(p, 0.12)
			if err != nil {
				t.Fatal(err)
			}
			have, err := got.Search(p, 0.12)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(have, want) {
				t.Fatalf("collection %q: loaded Search(%q) diverges", name, p)
			}
		}
	}
}
