package catalog

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// hitSet reduces DocHits to their (doc, pos) identity.
func hitSet(hits []DocHit) map[[2]int]bool {
	set := make(map[[2]int]bool, len(hits))
	for _, h := range hits {
		set[[2]int{h.Doc, h.Pos}] = true
	}
	return set
}

// TestCatalogApproxContainment is the catalog layer's cell of the
// containment grid: a mixed catalog holding the same documents once under
// the plain backend and once under the approx backend must satisfy
// exact(τ) ⊆ approx(τ) ⊆ exact(τ−ε) through the sharded fan-out and merge.
func TestCatalogApproxContainment(t *testing.T) {
	docs := gen.Collection(gen.Config{N: 2000, Theta: 0.3, Seed: 241})
	const eps = 0.05
	c := New(Options{TauMin: 0.1, Shards: 3})
	exact, err := c.Add("exact", docs)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := c.AddWithSpec("approx", docs, core.BackendSpec{Kind: core.BackendApprox, Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	if approx.Backend() != core.BackendApprox || approx.Epsilon() != eps {
		t.Fatalf("approx collection spec = %s", approx.Spec())
	}
	if exact.Epsilon() != 0 {
		t.Fatalf("exact collection reports ε=%v", exact.Epsilon())
	}
	checked, reported := 0, 0
	for _, m := range []int{2, 4, 9} {
		for _, p := range gen.CollectionPatterns(docs, 6, m, int64(251+m)) {
			for _, tau := range []float64{0.2, 0.35} {
				got, err := approx.Search(p, tau)
				if err != nil {
					t.Fatal(err)
				}
				upper, err := exact.Search(p, tau)
				if err != nil {
					t.Fatal(err)
				}
				lower, err := exact.Search(p, tau-eps)
				if err != nil {
					t.Fatal(err)
				}
				gotSet, lowerSet := hitSet(got), hitSet(lower)
				for _, h := range upper {
					if !gotSet[[2]int{h.Doc, h.Pos}] {
						t.Fatalf("Search(%q, %v): approx missed exact hit %+v", p, tau, h)
					}
				}
				for _, h := range got {
					if !lowerSet[[2]int{h.Doc, h.Pos}] {
						t.Fatalf("Search(%q, %v): approx hit %+v below τ−ε", p, tau, h)
					}
				}
				n, err := approx.Count(p, tau)
				if err != nil || n != len(got) {
					t.Fatalf("Count(%q, %v) = %d, %v; Search found %d", p, tau, n, err, len(got))
				}
				checked++
				reported += len(got)
			}
		}
	}
	if checked == 0 || reported == 0 {
		t.Fatalf("vacuous containment run: %d queries, %d hits", checked, reported)
	}
	// TopK on the approx collection is a typed capability rejection
	// surfacing through the fan-out.
	if _, err := approx.TopK([]byte("AC"), 3); !errors.Is(err, core.ErrUnsupportedQuery) {
		t.Fatalf("TopK on approx collection: %v, want ErrUnsupportedQuery", err)
	}
	// The exact collection in the same catalog keeps full top-k support.
	if _, err := exact.TopK([]byte("AC"), 3); err != nil {
		t.Fatalf("TopK on exact collection: %v", err)
	}
}

// TestCatalogApproxSaveLoad: the cache round-trips the approx collection —
// manifest ε, format-3 document envelopes — and the loaded collection
// answers identically.
func TestCatalogApproxSaveLoad(t *testing.T) {
	docs := gen.Collection(gen.Config{N: 1200, Theta: 0.3, Seed: 257})
	opts := Options{TauMin: 0.1, Shards: 2}
	c := New(opts)
	orig, err := c.AddWithSpec("a", docs, core.BackendSpec{Kind: core.BackendApprox, Epsilon: 0.07})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	loadedCat, err := Load(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	loaded, ok := loadedCat.Get("a")
	if !ok {
		t.Fatal("collection missing after Load")
	}
	if loaded.Spec() != orig.Spec() {
		t.Fatalf("loaded spec %s, want %s", loaded.Spec(), orig.Spec())
	}
	infos := loadedCat.Stats()
	if len(infos) != 1 || infos[0].Backend != core.BackendApprox || infos[0].Epsilon != 0.07 {
		t.Fatalf("loaded stats lost the spec: %+v", infos)
	}
	hits := 0
	for _, m := range []int{2, 5} {
		for _, p := range gen.CollectionPatterns(docs, 5, m, int64(263+m)) {
			want, err := orig.Search(p, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.Search(p, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("Search(%q): loaded %d hits, original %d", p, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Search(%q) hit %d: loaded %+v, original %+v", p, i, got[i], want[i])
				}
			}
			hits += len(want)
		}
	}
	if hits == 0 {
		t.Fatal("vacuous save/load check: no hits")
	}
}
