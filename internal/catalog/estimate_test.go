package catalog

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
)

// calibrationBound is the enforced estimate accuracy: per backend and
// pattern length, the pre-execution estimate must be within this factor of
// the measured obs.Cost, both ways. The estimator's job is admission
// control, not profiling — a bounded factor keeps the budget knob
// meaningful (a tenant's budget maps to real work within ~1.5 orders of
// magnitude) while leaving room for data-dependent variance the model
// deliberately ignores.
const calibrationBound = 32.0

// TestEstimateCalibration pins the cost model to reality: for each backend
// kind, the estimated cost units of a query must stay within
// calibrationBound of the units computed from the measured per-query cost
// counters. This is the test that fails if either the estimator or the
// backends drift apart.
func TestEstimateCalibration(t *testing.T) {
	docs := gen.Collection(gen.Config{N: 500, Theta: 0.3, Seed: 907})
	c := New(Options{TauMin: 0.1, Shards: 2})
	cols := map[string]*Collection{}
	for _, spec := range []core.BackendSpec{
		{Kind: core.BackendPlain},
		{Kind: core.BackendCompressed},
		{Kind: core.BackendApprox, Epsilon: 0.05},
	} {
		col, err := c.AddWithSpec(spec.Kind, docs, spec)
		if err != nil {
			t.Fatal(err)
		}
		cols[spec.Kind] = col
	}

	for kind, col := range cols {
		for _, m := range []int{2, 4, 8} {
			pats := gen.CollectionPatterns(docs, 4, m, int64(911+m))
			if len(pats) == 0 {
				t.Fatalf("%s m=%d: no patterns sampled", kind, m)
			}
			// Average over a few patterns: single queries on small
			// collections are noisy, the calibration target is the mean.
			var sumMeasured, sumEstimated float64
			for _, p := range pats {
				var cost obs.Cost
				if _, err := col.SearchObs(nil, &cost, p, 0.2); err != nil {
					t.Fatal(err)
				}
				snap := cost.Snapshot()
				sumMeasured += core.CostUnits(snap.Candidates, snap.SuffixSteps,
					snap.IndexBytes, snap.MergeComparisons, snap.ShardsTouched)
				sumEstimated += col.Estimate(len(p)).Units
			}
			measured := sumMeasured / float64(len(pats))
			estimated := sumEstimated / float64(len(pats))
			if estimated <= 0 || measured <= 0 {
				t.Fatalf("%s m=%d: degenerate units (est %.1f, measured %.1f)", kind, m, estimated, measured)
			}
			ratio := measured / estimated
			if ratio > calibrationBound || ratio < 1/calibrationBound {
				t.Errorf("%s m=%d: measured %.0f vs estimated %.0f units (ratio %.2f, bound %v)",
					kind, m, measured, estimated, ratio, calibrationBound)
			}
			t.Logf("%s m=%d: measured %.0f, estimated %.0f, ratio %.2f",
				kind, m, measured, estimated, ratio)
		}
	}
}

// TestEstimateShape pins the properties admission control relies on:
// estimates are cheap, deterministic, monotone in collection size, and
// insensitive to pathological pattern lengths (the long-pattern cap).
func TestEstimateShape(t *testing.T) {
	small := gen.Collection(gen.Config{N: 100, Theta: 0.3, Seed: 31})
	large := gen.Collection(gen.Config{N: 1000, Theta: 0.3, Seed: 31})
	c := New(Options{TauMin: 0.1, Shards: 2})
	cs, err := c.Add("small", small)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.Add("large", large)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Estimate(4).Units >= cl.Estimate(4).Units {
		t.Errorf("estimate not monotone in collection size: small %v >= large %v",
			cs.Estimate(4).Units, cl.Estimate(4).Units)
	}
	if a, b := cl.Estimate(4), cl.Estimate(4); a != b {
		t.Errorf("estimate not deterministic: %+v vs %+v", a, b)
	}
	// A pattern beyond the blocking cap must not price as unbounded work.
	capped := cl.Estimate(1 << 20)
	atCap := cl.Estimate(1 << 21)
	if capped.Units != atCap.Units {
		t.Errorf("long-pattern estimates diverge past the cap: %v vs %v", capped.Units, atCap.Units)
	}
	if zero := cl.Estimate(0); zero.Units != 0 {
		t.Errorf("zero-length pattern priced at %v units", zero.Units)
	}
}
