// Package catalog manages a sharded, multi-document collection of uncertain
// strings behind the single-string indexes of internal/core — the
// serving-tier counterpart of the paper's single-document library.
//
// A Catalog holds named Collections. Each Collection is a set of uncertain
// string documents, every document indexed whole by its own core.Backend —
// the plain suffix-array index or the compressed FM-index representation,
// chosen per collection at creation (Options.Backend, AddWithBackend) — and
// assigned round-robin to one of a fixed number of shards. Queries fan out
// across shards concurrently and merge the per-shard results:
//
//   - Search: threshold search (Problem 1) over every document, merged in
//     (document, position) order;
//   - TopK: the globally most probable occurrences, merged from the
//     per-shard candidates through a bounded min-heap;
//   - Count: the total number of qualifying occurrences.
//
// Because a document is always indexed as one unit, the shard count affects
// only the fan-out: results are bit-identical for every shard count,
// including the reported probabilities (see the equivalence test). The same
// holds for the backend choice — both representations compute probabilities
// through identical arithmetic, so a mixed-backend catalog answers exactly
// like an all-plain one, trading only memory for query latency.
//
// Index construction is the expensive step, so Build runs the per-document
// builds on a bounded worker pool, and a built catalog can be written to a
// cache directory with Save and reloaded with Load, reusing the core
// package's index persistence.
package catalog

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ustring"
)

// collectionID stamps every built or loaded collection with a
// process-unique id, so result caches can key on the collection *instance*
// and never serve results computed against a replaced collection.
var collectionID atomic.Uint64

// NextInstanceID draws a fresh id from the same process-unique sequence that
// stamps collections. Serving layers that present their own mutable views
// (internal/ingest) stamp each published snapshot from this sequence so one
// result-cache id space covers static collections and live views alike.
func NextInstanceID() uint64 { return collectionID.Add(1) }

// Options configures catalog construction.
type Options struct {
	// TauMin is the construction threshold of every document index; queries
	// support any tau ≥ TauMin. Defaults to 0.1.
	TauMin float64
	// Shards is the number of query fan-out shards per collection. Documents
	// are assigned round-robin. Defaults to GOMAXPROCS, capped at 16.
	Shards int
	// Workers bounds the worker pool running per-document index builds.
	// Defaults to GOMAXPROCS.
	Workers int
	// LongCap is passed through to core.WithLongCap when positive.
	LongCap int
	// Backend selects the default index backend for new collections
	// (core.BackendPlain, core.BackendCompressed or core.BackendApprox;
	// empty means plain). Individual collections may override it via
	// AddWithBackend/AddWithSpec. Exact backends trade memory against
	// latency only; the approx backend additionally trades exactness for
	// speed (additive error Epsilon).
	Backend string
	// Epsilon is the additive error bound used when Backend (or an
	// AddWithBackend override) selects the approx backend; 0 means
	// core.DefaultEpsilon. Ignored by exact backends.
	Epsilon float64
	// MMap makes cache loads map format-4 index files instead of reading
	// them onto the heap: opening is O(regions) and resident memory stays
	// near zero until queries fault pages in. Non-envelope (gob) cache
	// files fall back to the decode path regardless.
	MMap bool
	// HotCollections bounds how many collections stay resident at once
	// (0 = unbounded). When the bound is exceeded the least recently used
	// collection is evicted — its mappings released after EvictGrace — and
	// transparently faulted back in from the cache directory on its next
	// Get. Only effective once the catalog has a cache directory (Load or
	// Save); collections not present in the cache are never evicted.
	HotCollections int
	// EvictGrace is how long an evicted collection's backends stay valid
	// after eviction, covering queries already holding the collection.
	// Defaults to 5s.
	EvictGrace time.Duration
	// Metrics, when set, receives the catalog's zero-copy counters:
	// ustridx_decode_skips_total and ustridx_collection_faults_total.
	Metrics *obs.Registry
}

// Spec resolves a per-collection backend kind override (empty = the catalog
// default) into a validated core.BackendSpec carrying the catalog's ε. The
// ingest layer and the daemon route their backend choices through it so
// every layer derives the identical spec from the same options.
func (o Options) Spec(kind string) (core.BackendSpec, error) {
	if kind == "" {
		kind = o.Backend
	}
	eps := 0.0
	if kind == core.BackendApprox {
		eps = o.Epsilon
	}
	return core.NewBackendSpec(kind, eps)
}

func (o Options) withDefaults() Options {
	if o.TauMin <= 0 {
		o.TauMin = 0.1
	}
	if o.Backend == "" {
		o.Backend = core.BackendPlain
	}
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
		if o.Shards > 16 {
			o.Shards = 16
		}
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.EvictGrace <= 0 {
		o.EvictGrace = 5 * time.Second
	}
	return o
}

// DocHit is one occurrence of a pattern inside a collection.
type DocHit struct {
	// Doc is the document's index within the collection.
	Doc int
	// Pos is the starting position within the document.
	Pos int
	// Prob is the occurrence probability.
	Prob float64
}

// docIndex pairs a document id with its index backend.
type docIndex struct {
	doc int
	ix  core.Backend
}

// Collection is one named, sharded document set. It is immutable after
// construction and safe for concurrent use.
type Collection struct {
	id         uint64
	name       string
	tauMin     float64
	longCap    int
	spec       core.BackendSpec
	shards     [][]docIndex
	docs       int
	positions  int
	indexBytes int
	// mappedBytes is the summed mmap'd storage behind the collection's
	// document indexes (0 when heap-loaded).
	mappedBytes int64
	// lastUsed orders collections for LRU eviction; stamped from the
	// catalog's access sequence on every Get.
	lastUsed atomic.Int64
}

// Catalog is a set of named collections. All methods are safe for concurrent
// use.
type Catalog struct {
	opts Options

	// cacheDir remembers where the catalog was loaded from (or saved to):
	// the directory evicted collections are faulted back in from.
	cacheDir string

	// seq stamps collection accesses for LRU ordering; decodeSkips and
	// faults are the /v1/stats zero-copy counters.
	seq         atomic.Int64
	decodeSkips atomic.Int64
	faults      atomic.Int64

	skipsCounter  *obs.Counter
	faultsCounter *obs.Counter

	// faultMu serialises fault-ins so concurrent Gets of one evicted
	// collection load it once.
	faultMu sync.Mutex

	mu    sync.RWMutex
	colls map[string]*Collection
	// cold remembers evicted collections by their last Info snapshot, so
	// listings and stats still cover them while they are unmapped.
	cold map[string]Info
}

// New returns an empty catalog.
func New(opts Options) *Catalog {
	c := &Catalog{
		opts:  opts.withDefaults(),
		colls: make(map[string]*Collection),
		cold:  make(map[string]Info),
	}
	if r := c.opts.Metrics; r != nil {
		c.skipsCounter = r.Counter("ustridx_decode_skips_total",
			"Cache loads that skipped the decode/rebuild path because a format-4 envelope validated.")
		c.faultsCounter = r.Counter("ustridx_collection_faults_total",
			"Evicted collections faulted back in from the cache directory on first query.")
	}
	return c
}

// Options returns the catalog's effective (defaulted) options.
func (c *Catalog) Options() Options { return c.opts }

// ScanDir lists the collection files of a data directory as a map from
// collection name (base name without extension) to file name. Hidden files
// and subdirectories are skipped; two files mapping to the same name is an
// error.
func ScanDir(dir string) (map[string]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	sources := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), filepath.Ext(e.Name()))
		if prev, dup := sources[name]; dup {
			return nil, fmt.Errorf("catalog: files %s and %s both map to collection %q", prev, e.Name(), name)
		}
		sources[name] = e.Name()
	}
	return sources, nil
}

// Open builds a catalog from a directory of collection files: every
// non-hidden regular file is parsed as a '%'-separated collection
// (ustring.UnmarshalCollection) and added under its base name without
// extension.
func Open(dir string, opts Options) (*Catalog, error) {
	sources, err := ScanDir(dir)
	if err != nil {
		return nil, err
	}
	c := New(opts)
	for name, file := range sources {
		f, err := os.Open(filepath.Join(dir, file))
		if err != nil {
			return nil, fmt.Errorf("catalog: %w", err)
		}
		docs, err := ustring.UnmarshalCollection(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("catalog: %s: %w", file, err)
		}
		if _, err := c.Add(name, docs); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Add builds indexes for docs on the catalog's worker pool and registers the
// collection under name, replacing any previous collection of that name. The
// catalog's default backend is used; AddWithBackend/AddWithSpec override it.
func (c *Catalog) Add(name string, docs []*ustring.String) (*Collection, error) {
	return c.AddWithBackend(name, docs, c.opts.Backend)
}

// AddWithBackend is Add with an explicit index backend kind for this
// collection (empty means the catalog default; the approx kind picks up the
// catalog's Epsilon). Collections of different backends coexist in one
// catalog; exact backends answer queries bit-identically, the approx backend
// under its declared ε.
func (c *Catalog) AddWithBackend(name string, docs []*ustring.String, backend string) (*Collection, error) {
	spec, err := c.opts.Spec(backend)
	if err != nil {
		return nil, fmt.Errorf("catalog: collection %q: %w", name, err)
	}
	return c.AddWithSpec(name, docs, spec)
}

// AddWithSpec is Add with a full backend spec (kind plus construction
// parameters) for this collection. The zero spec means the plain backend.
func (c *Catalog) AddWithSpec(name string, docs []*ustring.String, spec core.BackendSpec) (*Collection, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: empty collection name")
	}
	spec, err := core.NewBackendSpec(spec.Kind, spec.Epsilon)
	if err != nil {
		return nil, fmt.Errorf("catalog: collection %q: %w", name, err)
	}
	ixs, err := c.buildAll(docs, spec)
	if err != nil {
		return nil, fmt.Errorf("catalog: collection %q: %w", name, err)
	}
	col := c.assemble(name, c.opts.TauMin, c.opts.LongCap, spec, ixs)
	col.lastUsed.Store(c.seq.Add(1))
	c.mu.Lock()
	c.colls[name] = col
	delete(c.cold, name)
	c.evictLocked()
	c.mu.Unlock()
	return col, nil
}

// runPool runs fn(i) for every i in [0, n) on the catalog's bounded worker
// pool and returns the first error by index.
func (c *Catalog) runPool(n int, fn func(i int) error) error {
	errs := make([]error, n)
	sem := make(chan struct{}, c.opts.Workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("document %d: %w", i, err)
		}
	}
	return nil
}

// buildAll builds one index per document on the worker pool, all with the
// same backend spec.
func (c *Catalog) buildAll(docs []*ustring.String, spec core.BackendSpec) ([]core.Backend, error) {
	var buildOpts []core.Option
	if c.opts.LongCap > 0 {
		buildOpts = append(buildOpts, core.WithLongCap(c.opts.LongCap))
	}
	ixs := make([]core.Backend, len(docs))
	err := c.runPool(len(docs), func(i int) error {
		var err error
		ixs[i], err = spec.Build(docs[i], c.opts.TauMin, buildOpts...)
		return err
	})
	if err != nil {
		return nil, err
	}
	return ixs, nil
}

// assemble distributes built or loaded indexes round-robin over the shards.
func (c *Catalog) assemble(name string, tauMin float64, longCap int, spec core.BackendSpec, ixs []core.Backend) *Collection {
	return FromIndexes(name, tauMin, longCap, c.opts.Shards, spec, ixs)
}

// FromIndexes assembles a collection directly from already-built
// per-document indexes, distributing them round-robin over shards (shards
// < 1 is treated as 1). Index i becomes document i; spec labels the
// collection's configured backend (the zero spec means plain). Assembly
// never rebuilds an index, so a collection re-assembled from the same
// indexes answers queries identically — the property the ingest layer's
// compaction relies on when folding delta documents into a new base.
func FromIndexes(name string, tauMin float64, longCap, shards int, spec core.BackendSpec, ixs []core.Backend) *Collection {
	if shards < 1 {
		shards = 1
	}
	if spec.Kind == "" {
		spec.Kind = core.BackendPlain
	}
	col := &Collection{
		id:      collectionID.Add(1),
		name:    name,
		tauMin:  tauMin,
		longCap: longCap,
		spec:    spec,
		shards:  make([][]docIndex, shards),
		docs:    len(ixs),
	}
	for i, ix := range ixs {
		s := i % len(col.shards)
		col.shards[s] = append(col.shards[s], docIndex{doc: i, ix: ix})
		// SourceLen, not Source().Len(): the latter would materialise every
		// lazily-loaded (mmap'd) document source and defeat the O(1) start.
		col.positions += core.SourceLen(ix)
		col.indexBytes += ix.Bytes()
		col.mappedBytes += core.BackendMappedBytes(ix)
	}
	return col
}

// Get returns the named collection, stamping it most recently used. A
// collection evicted under the HotCollections bound is transparently
// faulted back in from the cache directory (counted in
// ustridx_collection_faults_total); callers never observe eviction beyond
// the first query's re-open latency.
func (c *Catalog) Get(name string) (*Collection, bool) {
	c.mu.RLock()
	col, ok := c.colls[name]
	_, isCold := c.cold[name]
	dir := c.cacheDir
	c.mu.RUnlock()
	if ok {
		col.lastUsed.Store(c.seq.Add(1))
		return col, true
	}
	if !isCold || dir == "" {
		return nil, false
	}
	// Fault the evicted collection back in, once: concurrent Gets of the
	// same (or another) cold collection serialise here rather than all
	// re-mapping it.
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	c.mu.RLock()
	col, ok = c.colls[name]
	c.mu.RUnlock()
	if !ok {
		if err := c.loadCollection(filepath.Join(dir, name), name); err != nil {
			return nil, false
		}
		c.faults.Add(1)
		if c.faultsCounter != nil {
			c.faultsCounter.Inc()
		}
		c.mu.RLock()
		col, ok = c.colls[name]
		c.mu.RUnlock()
	}
	if ok {
		col.lastUsed.Store(c.seq.Add(1))
	}
	return col, ok
}

// evictLocked enforces the HotCollections bound: while too many collections
// are resident, the least recently used one that can be restored from the
// cache directory moves to the cold set and its backends are closed after
// EvictGrace (covering queries that already hold the collection — they keep
// a *Collection reference, which stays fully usable until the grace timer
// releases the mappings). The caller holds c.mu.
func (c *Catalog) evictLocked() {
	limit := c.opts.HotCollections
	if limit <= 0 || c.cacheDir == "" || len(c.colls) <= limit {
		return
	}
	type cand struct {
		name string
		used int64
	}
	cands := make([]cand, 0, len(c.colls))
	for name, col := range c.colls {
		// Only collections present in the cache can fault back in; never
		// evict one that would be lost.
		if _, err := os.Stat(filepath.Join(c.cacheDir, name, manifestName)); err != nil {
			continue
		}
		cands = append(cands, cand{name, col.lastUsed.Load()})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].used < cands[b].used })
	for _, v := range cands {
		if len(c.colls) <= limit {
			break
		}
		col := c.colls[v.name]
		delete(c.colls, v.name)
		c.cold[v.name] = infoOf(col)
		backends := col.DocIndexes()
		time.AfterFunc(c.opts.EvictGrace, func() {
			for _, b := range backends {
				_ = core.CloseBackend(b)
			}
		})
	}
}

// Names returns the collection names in sorted order, including collections
// currently evicted under the HotCollections bound.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.colls)+len(c.cold))
	for n := range c.colls {
		names = append(names, n)
	}
	for n := range c.cold {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Info summarises one collection for stats reporting.
type Info struct {
	Name      string
	Docs      int
	Positions int
	Shards    int
	TauMin    float64
	// LongCap is the long-pattern blocking cap the collection was built
	// with (0 = library default); serving layers compare it against their
	// requested options to detect stale caches.
	LongCap int
	// Backend names the collection's index backend kind (core.BackendPlain,
	// core.BackendCompressed or core.BackendApprox).
	Backend string
	// Epsilon is the approx backend's additive error bound; 0 for exact
	// backends.
	Epsilon float64
	// IndexBytes is the summed resident footprint of the collection's
	// per-document indexes — the number that makes the compressed backend's
	// savings observable per collection.
	IndexBytes int
	// MappedBytes is the mmap'd storage behind the collection's document
	// indexes; 0 when heap-loaded. Mapped bytes are file-backed and
	// reclaimable, so they do not count toward process heap.
	MappedBytes int64
	// Cold marks a collection currently evicted under the HotCollections
	// bound; its next Get faults it back in from the cache directory.
	Cold bool
}

func infoOf(col *Collection) Info {
	return Info{
		Name:        col.name,
		Docs:        col.docs,
		Positions:   col.positions,
		Shards:      len(col.shards),
		TauMin:      col.tauMin,
		LongCap:     col.longCap,
		Backend:     col.spec.Kind,
		Epsilon:     col.spec.Epsilon,
		IndexBytes:  col.indexBytes,
		MappedBytes: col.mappedBytes,
	}
}

// Stats returns per-collection summaries in name order. Evicted (cold)
// collections report the snapshot taken at eviction with Cold set.
func (c *Catalog) Stats() []Info {
	c.mu.RLock()
	defer c.mu.RUnlock()
	infos := make([]Info, 0, len(c.colls)+len(c.cold))
	for _, col := range c.colls {
		infos = append(infos, infoOf(col))
	}
	for _, info := range c.cold {
		info.Cold = true
		info.MappedBytes = 0 // mappings were released at eviction
		infos = append(infos, info)
	}
	sort.Slice(infos, func(a, b int) bool { return infos[a].Name < infos[b].Name })
	return infos
}

// MappedStats summarises the catalog's zero-copy serving state for the
// daemon's /v1/stats endpoint.
type MappedStats struct {
	// MappedBytes sums the mmap'd storage behind all resident collections.
	MappedBytes int64 `json:"mapped_bytes"`
	// DecodeSkips counts cache loads that skipped the decode/rebuild path
	// because a format-4 envelope validated in place.
	DecodeSkips int64 `json:"decode_skips"`
	// CollectionFaults counts evicted collections faulted back in on Get.
	CollectionFaults int64 `json:"collection_faults"`
	// HotCollections echoes the configured residency bound (0 = unbounded).
	HotCollections int `json:"hot_collections"`
	// ColdCollections is how many collections are currently evicted.
	ColdCollections int `json:"cold_collections"`
}

// MappedStats reports the catalog's zero-copy counters.
func (c *Catalog) MappedStats() MappedStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var mb int64
	for _, col := range c.colls {
		mb += col.mappedBytes
	}
	return MappedStats{
		MappedBytes:      mb,
		DecodeSkips:      c.decodeSkips.Load(),
		CollectionFaults: c.faults.Load(),
		HotCollections:   c.opts.HotCollections,
		ColdCollections:  len(c.cold),
	}
}

// Name returns the collection's name.
func (col *Collection) Name() string { return col.name }

// ID returns a process-unique id for this collection instance. Replacing a
// collection via Add yields a new id, which result caches fold into their
// keys so stale entries can never match.
func (col *Collection) ID() uint64 { return col.id }

// Docs returns the number of documents.
func (col *Collection) Docs() int { return col.docs }

// Positions returns the total number of positions across documents.
func (col *Collection) Positions() int { return col.positions }

// TauMin returns the construction threshold shared by every document index.
func (col *Collection) TauMin() float64 { return col.tauMin }

// Shards returns the fan-out shard count.
func (col *Collection) Shards() int { return len(col.shards) }

// Backend returns the collection's index backend kind.
func (col *Collection) Backend() string { return col.spec.Kind }

// Epsilon returns the approx backend's additive error bound (0 for exact
// backends).
func (col *Collection) Epsilon() float64 { return col.spec.Epsilon }

// Spec returns the collection's full backend spec (kind plus construction
// parameters) — the value serving layers consult for capabilities and fold
// into result-cache keys.
func (col *Collection) Spec() core.BackendSpec { return col.spec }

// IndexBytes returns the summed resident footprint of the collection's
// per-document indexes.
func (col *Collection) IndexBytes() int { return col.indexBytes }

// MappedBytes returns the mmap'd storage behind the collection's document
// indexes (0 when heap-loaded).
func (col *Collection) MappedBytes() int64 { return col.mappedBytes }

// Estimate prices a query of patternLen bytes against this collection from
// its already-held statistics (documents, positions, shards, backend kind,
// long-pattern cap) — no index structure is touched. Admission tiers call
// it before deciding to execute; see core.EstimateQuery for the model.
func (col *Collection) Estimate(patternLen int) core.QueryEstimate {
	return core.EstimateQuery(col.spec, col.docs, col.positions, len(col.shards), col.longCap, patternLen)
}

// DocIndexes returns the per-document indexes in document order. The indexes
// are shared, not copied — they are immutable, so callers (the ingest layer
// seeding its live document set) may hand them to FromIndexes freely.
func (col *Collection) DocIndexes() []core.Backend {
	out := make([]core.Backend, col.docs)
	for _, shard := range col.shards {
		for _, di := range shard {
			out[di.doc] = di.ix
		}
	}
	return out
}
