package catalog

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/mapped"
	"repro/internal/obs"
	"repro/internal/ustring"
)

// collGrid queries a collection over a pattern/τ grid and returns every
// result, so two load paths can be compared bit-for-bit.
func collGrid(t *testing.T, docs []*ustring.String, col *Collection) []any {
	t.Helper()
	var out []any
	for _, m := range []int{2, 4, 7} {
		for _, p := range gen.CollectionPatterns(docs, 4, m, 61) {
			for _, tau := range []float64{0.1, 0.3, 0.7} {
				hits, err := col.Search(p, tau)
				if err != nil {
					t.Fatalf("Search(%q, %v): %v", p, tau, err)
				}
				n, _ := col.Count(p, tau)
				top, _ := col.TopK(p, 5)
				out = append(out, hits, n, top)
			}
		}
	}
	return out
}

// TestMMapLoadEquivalence proves the catalog's three load paths — fresh
// build, heap cache load, mmap cache load — answer the full query grid
// identically, and that the mmap path skips every decode while reporting
// its mapped footprint.
func TestMMapLoadEquivalence(t *testing.T) {
	docs := testDocs(t, 800, 83)
	built := New(Options{TauMin: 0.1, Shards: 3, Backend: core.BackendCompressed})
	if _, err := built.Add("coll", docs); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := built.Save(dir); err != nil {
		t.Fatal(err)
	}
	base, _ := built.Get("coll")
	want := collGrid(t, docs, base)

	t.Run("heap", func(t *testing.T) {
		c, err := Load(dir, Options{Shards: 3, Backend: core.BackendCompressed})
		if err != nil {
			t.Fatal(err)
		}
		col, ok := c.Get("coll")
		if !ok {
			t.Fatal("loaded catalog misses the collection")
		}
		if got := collGrid(t, docs, col); !reflect.DeepEqual(got, want) {
			t.Fatal("heap cache load diverges from the built catalog")
		}
		// Format-4 files skip the decode path even without mmap.
		if ms := c.MappedStats(); ms.DecodeSkips != int64(len(docs)) {
			t.Fatalf("DecodeSkips = %d, want %d", ms.DecodeSkips, len(docs))
		}
	})

	t.Run("mmap", func(t *testing.T) {
		reg := obs.NewRegistry()
		c, err := Load(dir, Options{Shards: 3, Backend: core.BackendCompressed, MMap: true, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		col, ok := c.Get("coll")
		if !ok {
			t.Fatal("loaded catalog misses the collection")
		}
		if got := collGrid(t, docs, col); !reflect.DeepEqual(got, want) {
			t.Fatal("mmap cache load diverges from the built catalog")
		}
		ms := c.MappedStats()
		if ms.DecodeSkips != int64(len(docs)) {
			t.Fatalf("DecodeSkips = %d, want %d", ms.DecodeSkips, len(docs))
		}
		if mapped.Available() {
			if ms.MappedBytes == 0 || col.MappedBytes() != ms.MappedBytes {
				t.Fatalf("MappedBytes = %d (collection %d), want equal and > 0",
					ms.MappedBytes, col.MappedBytes())
			}
		}
		infos := c.Stats()
		if len(infos) != 1 || infos[0].MappedBytes != col.MappedBytes() {
			t.Fatalf("Stats() = %+v, want one entry mirroring MappedBytes", infos)
		}
	})
}

// TestHotCollectionsEviction drives the LRU bound: loading three cached
// collections under HotCollections=2 evicts the coldest, listings still
// cover it, and its next Get faults it back in with bit-identical answers.
func TestHotCollectionsEviction(t *testing.T) {
	docsA := testDocs(t, 500, 11)
	docsB := testDocs(t, 500, 23)
	docsC := testDocs(t, 500, 37)
	built := New(Options{TauMin: 0.1, Shards: 2, Backend: core.BackendCompressed})
	for name, docs := range map[string][]*ustring.String{"aa": docsA, "bb": docsB, "cc": docsC} {
		if _, err := built.Add(name, docs); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if err := built.Save(dir); err != nil {
		t.Fatal(err)
	}
	baseA, _ := built.Get("aa")
	wantA := collGrid(t, docsA, baseA)

	reg := obs.NewRegistry()
	c, err := Load(dir, Options{
		Shards: 2, Backend: core.BackendCompressed, MMap: true,
		HotCollections: 2, EvictGrace: 10 * time.Millisecond, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ms := c.MappedStats()
	if ms.ColdCollections != 1 {
		t.Fatalf("ColdCollections = %d after bounded load, want 1", ms.ColdCollections)
	}
	if got, want := c.Names(), []string{"aa", "bb", "cc"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v (cold collections must stay listed)", got, want)
	}
	cold := 0
	for _, info := range c.Stats() {
		if info.Cold {
			cold++
		}
	}
	if cold != 1 {
		t.Fatalf("Stats() reports %d cold collections, want 1", cold)
	}

	// Touch bb and cc so aa becomes (or stays) the LRU victim, then force
	// aa cold regardless of which collection the bounded load evicted.
	for _, name := range []string{"bb", "cc"} {
		if _, ok := c.Get(name); !ok {
			t.Fatalf("Get(%q) failed", name)
		}
	}
	colA, ok := c.Get("aa")
	if !ok {
		t.Fatal("Get(aa) failed — fault-in from cache did not work")
	}
	if got := collGrid(t, docsA, colA); !reflect.DeepEqual(got, wantA) {
		t.Fatal("faulted-in collection diverges from the built one")
	}
	// aa's fault-in evicted another collection; total faults so far depends
	// on which collection the initial load evicted, but at least aa's Get
	// after the touches must have faulted if aa was cold.
	if got := c.MappedStats(); got.CollectionFaults < 1 {
		t.Fatalf("CollectionFaults = %d, want ≥ 1", got.CollectionFaults)
	}
	if got := c.MappedStats(); got.ColdCollections != 1 {
		t.Fatalf("ColdCollections = %d after fault-in, want 1", got.ColdCollections)
	}

	// Wait out the grace window: queries against the still-held reference
	// completed above; the evicted backends may now be closed, and every
	// collection must still be reachable (faulting back as needed).
	time.Sleep(30 * time.Millisecond)
	for _, name := range []string{"aa", "bb", "cc"} {
		col, ok := c.Get(name)
		if !ok {
			t.Fatalf("Get(%q) failed after grace window", name)
		}
		if _, err := col.Search([]byte("ab"), 0.3); err != nil {
			t.Fatalf("query on %q after grace window: %v", name, err)
		}
	}
}
