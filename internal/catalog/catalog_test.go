package catalog

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/ustring"
)

func testDocs(t *testing.T, n int, seed int64) []*ustring.String {
	t.Helper()
	docs := gen.Collection(gen.Config{N: n, Theta: 0.3, Seed: seed})
	if len(docs) < 2 {
		t.Fatalf("generator produced %d documents, want several", len(docs))
	}
	return docs
}

func testCatalog(t *testing.T, docs []*ustring.String, shards int) *Collection {
	t.Helper()
	c := New(Options{TauMin: 0.1, Shards: shards})
	col, err := c.Add("coll", docs)
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func TestCatalogBuildAndStats(t *testing.T) {
	docs := testDocs(t, 600, 7)
	c := New(Options{TauMin: 0.1, Shards: 4, Workers: 2})
	if _, err := c.Add("alpha", docs); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add("beta", docs[:2]); err != nil {
		t.Fatal(err)
	}
	if got, want := c.Names(), []string{"alpha", "beta"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	col, ok := c.Get("alpha")
	if !ok {
		t.Fatal("Get(alpha) not found")
	}
	if col.Docs() != len(docs) {
		t.Fatalf("Docs() = %d, want %d", col.Docs(), len(docs))
	}
	total := 0
	for _, d := range docs {
		total += d.Len()
	}
	if col.Positions() != total {
		t.Fatalf("Positions() = %d, want %d", col.Positions(), total)
	}
	if col.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", col.Shards())
	}
	infos := c.Stats()
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "beta" {
		t.Fatalf("Stats() = %+v", infos)
	}
	if infos[0].Docs != len(docs) || infos[0].Positions != total || infos[0].TauMin != 0.1 {
		t.Fatalf("Stats()[0] = %+v", infos[0])
	}
	if _, ok := c.Get("nope"); ok {
		t.Fatal("Get(nope) found a collection")
	}
}

func TestOpenDirectory(t *testing.T) {
	docs := testDocs(t, 400, 11)
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "proteins.ustr"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ustring.MarshalCollection(f, docs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Hidden files and subdirectories must be skipped.
	if err := os.WriteFile(filepath.Join(dir, ".hidden"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir, Options{TauMin: 0.1, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.Names(), []string{"proteins"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	col, _ := c.Get("proteins")
	pats := gen.CollectionPatterns(docs, 5, 4, 13)
	for _, p := range pats {
		if _, err := col.Search(p, 0.15); err != nil {
			t.Fatalf("Search(%q): %v", p, err)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	col := testCatalog(t, testDocs(t, 300, 17), 2)
	if _, err := col.Search(nil, 0.2); !errors.Is(err, core.ErrEmptyPattern) {
		t.Fatalf("Search(empty) err = %v, want ErrEmptyPattern", err)
	}
	if _, err := col.Search([]byte("AC"), 1.5); !errors.Is(err, core.ErrTauOutOfRange) {
		t.Fatalf("Search(tau=1.5) err = %v, want ErrTauOutOfRange", err)
	}
	if _, err := col.Search([]byte("AC"), 0.01); !errors.Is(err, core.ErrTauBelowTauMin) {
		t.Fatalf("Search(tau<taumin) err = %v, want ErrTauBelowTauMin", err)
	}
	if _, err := col.Count([]byte{}, 0.2); !errors.Is(err, core.ErrEmptyPattern) {
		t.Fatalf("Count(empty) err = %v, want ErrEmptyPattern", err)
	}
	if err := col.Validate([]byte{0}, 0.2); !errors.Is(err, core.ErrBadPattern) {
		t.Fatalf("Validate(NUL) err = %v, want ErrBadPattern", err)
	}
	if err := col.Validate([]byte("AC"), 0.2); err != nil {
		t.Fatalf("Validate(valid) err = %v", err)
	}
	if hits, err := col.TopK([]byte("AC"), 0); err != nil || hits != nil {
		t.Fatalf("TopK(k=0) = %v, %v; want nil, nil", hits, err)
	}
	c := New(Options{})
	if _, err := c.Add("", nil); err == nil {
		t.Fatal("Add(\"\") succeeded, want error")
	}
}

func TestPersistRoundTrip(t *testing.T) {
	docs := testDocs(t, 500, 23)
	c := New(Options{TauMin: 0.1, Shards: 3})
	if _, err := c.Add("saved", docs); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir, Options{Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := c.Get("saved")
	got, ok := loaded.Get("saved")
	if !ok {
		t.Fatal("loaded catalog is missing the collection")
	}
	if got.TauMin() != orig.TauMin() || got.Docs() != orig.Docs() || got.Positions() != orig.Positions() {
		t.Fatalf("loaded collection %+v differs from original", got)
	}
	if got.Shards() != 5 {
		t.Fatalf("loaded Shards() = %d, want 5 (from load options)", got.Shards())
	}
	for _, m := range []int{3, 6} {
		for _, p := range gen.CollectionPatterns(docs, 8, m, 29) {
			a, err := orig.Search(p, 0.15)
			if err != nil {
				t.Fatal(err)
			}
			b, err := got.Search(p, 0.15)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("loaded catalog disagrees on %q: %v vs %v", p, a, b)
			}
		}
	}
}

func TestOpenRejectsDuplicateNames(t *testing.T) {
	docs := testDocs(t, 200, 19)
	dir := t.TempDir()
	for _, name := range []string{"genes.txt", "genes.dat"} {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := ustring.MarshalCollection(f, docs); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open with colliding base names succeeded, want error")
	}
}

func TestSavePrunesStaleCache(t *testing.T) {
	docs := testDocs(t, 400, 27)
	dir := t.TempDir()
	c := New(Options{TauMin: 0.1, Shards: 2})
	if _, err := c.Add("keep", docs); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add("drop", docs[:3]); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	// An unrelated directory without a manifest must survive pruning.
	if err := os.MkdirAll(filepath.Join(dir, "unrelated"), 0o755); err != nil {
		t.Fatal(err)
	}
	// A second catalog without "drop" and with a smaller "keep" must prune
	// both the stale collection and the excess document files.
	c2 := New(Options{TauMin: 0.1, Shards: 2})
	if _, err := c2.Add("keep", docs[:2]); err != nil {
		t.Fatal(err)
	}
	if err := c2.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "drop")); !os.IsNotExist(err) {
		t.Fatal("stale collection cache not pruned")
	}
	if _, err := os.Stat(filepath.Join(dir, "unrelated")); err != nil {
		t.Fatal("unrelated directory removed by pruning")
	}
	if _, err := os.Stat(filepath.Join(dir, "keep", docFileName(2))); !os.IsNotExist(err) {
		t.Fatal("stale document file not pruned")
	}
	loaded, err := Load(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Names(), []string{"keep"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Load after prune = %v, want %v", got, want)
	}
	col, _ := loaded.Get("keep")
	if col.Docs() != 2 {
		t.Fatalf("pruned collection has %d docs, want 2", col.Docs())
	}
}

func TestSaveRejectsUnsafeNames(t *testing.T) {
	docs := testDocs(t, 200, 33)
	for _, name := range []string{".hidden", "a/b", ".."} {
		c := New(Options{TauMin: 0.1})
		if _, err := c.Add(name, docs[:1]); err != nil {
			t.Fatal(err)
		}
		if err := c.Save(t.TempDir()); err == nil {
			t.Fatalf("Save of collection %q succeeded; Load would silently drop it", name)
		}
	}
}

func TestPersistKeepsLongCap(t *testing.T) {
	docs := testDocs(t, 300, 39)
	c := New(Options{TauMin: 0.1, LongCap: 7})
	if _, err := c.Add("capped", docs); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	infos := loaded.Stats()
	if len(infos) != 1 || infos[0].LongCap != 7 {
		t.Fatalf("loaded LongCap = %+v, want 7", infos)
	}
}

func TestLoadRejectsBadCache(t *testing.T) {
	dir := t.TempDir()
	if err := os.Mkdir(filepath.Join(dir, "broken"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "broken", manifestName), []byte("not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, Options{}); err == nil {
		t.Fatal("Load of a collection with a corrupt manifest succeeded")
	}
	// A directory without a manifest is not a cached collection at all and
	// must simply be skipped.
	empty := t.TempDir()
	if err := os.Mkdir(filepath.Join(empty, "junk"), 0o755); err != nil {
		t.Fatal(err)
	}
	c, err := Load(empty, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Names()) != 0 {
		t.Fatalf("Load of manifest-less dirs produced collections %v", c.Names())
	}
}
