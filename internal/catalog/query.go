package catalog

import (
	"container/heap"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// shardResult carries one shard's hits (or count) back to the merger, plus
// the time the shard spent inside the backend searches and the backend cost
// counters it accumulated. Durations and stats travel back through the join
// rather than into the trace/cost directly, so shard goroutines never touch
// the (unsynchronised) request-level observability state.
type shardResult struct {
	hits  []DocHit
	count int
	dur   time.Duration
	stats core.QueryStats
	err   error
}

// fanOut runs fn once per non-empty shard concurrently and returns the
// per-shard results in shard order. Collections are immutable, so the only
// synchronisation is the join. With a non-nil trace it records two stages:
// "fanout" (wall time of the whole scatter/join) and "backend_search" (the
// sum of per-shard search time, i.e. the work the fan-out parallelised).
// With a non-nil cost it counts the shards that ran and sums the per-shard
// backend stats at the join.
func (col *Collection) fanOut(tr *obs.Trace, c *obs.Cost, fn func(shard []docIndex, out *shardResult)) ([]shardResult, error) {
	results := make([]shardResult, len(col.shards))
	begin := time.Time{}
	if tr != nil {
		begin = time.Now()
	}
	var wg sync.WaitGroup
	touched := int64(0)
	for s := range col.shards {
		if len(col.shards[s]) == 0 {
			continue
		}
		touched++
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if tr != nil {
				t0 := time.Now()
				fn(col.shards[s], &results[s])
				results[s].dur = time.Since(t0)
				return
			}
			fn(col.shards[s], &results[s])
		}(s)
	}
	wg.Wait()
	if tr != nil {
		tr.Add("fanout", time.Since(begin))
		var busy time.Duration
		for s := range results {
			busy += results[s].dur
		}
		tr.Add("backend_search", busy)
	}
	if c != nil {
		c.AddShards(touched)
		for s := range results {
			st := &results[s].stats
			c.AddCandidates(st.Candidates)
			c.AddSuffixSteps(st.SuffixSteps)
			c.AddIndexBytes(st.IndexBytes)
		}
	}
	for s := range results {
		if results[s].err != nil {
			return nil, results[s].err
		}
	}
	return results, nil
}

// DocFilter remaps a collection-local document index to the document number
// reported in hits, or drops the document entirely. Mutable serving layers
// (internal/ingest) use filters to mask tombstoned documents and renumber
// the survivors into a merged base+delta view; because the filter is applied
// per document before any merging, the filtered results are exactly those of
// a collection that never contained the dropped documents.
type DocFilter func(doc int) (mapped int, ok bool)

// apply resolves a document index through the filter; a nil filter keeps
// every document under its own number.
func (f DocFilter) apply(doc int) (int, bool) {
	if f == nil {
		return doc, true
	}
	return f(doc)
}

// Search reports every occurrence of p with probability strictly greater
// than tau in any document, ordered by (document, position). tau must
// satisfy TauMin ≤ tau ≤ 1.
func (col *Collection) Search(p []byte, tau float64) ([]DocHit, error) {
	return col.SearchFilteredObs(nil, nil, p, tau, nil)
}

// SearchTraced is Search recording per-stage timings into tr (nil tr means
// no recording; the untraced methods delegate here).
func (col *Collection) SearchTraced(tr *obs.Trace, p []byte, tau float64) ([]DocHit, error) {
	return col.SearchFilteredObs(tr, nil, p, tau, nil)
}

// SearchObs is Search recording per-stage timings into tr and resource
// counters into c (either may be nil).
func (col *Collection) SearchObs(tr *obs.Trace, c *obs.Cost, p []byte, tau float64) ([]DocHit, error) {
	return col.SearchFilteredObs(tr, c, p, tau, nil)
}

// SearchFiltered is Search restricted to the documents kept by keep, with
// hits renumbered through it.
func (col *Collection) SearchFiltered(p []byte, tau float64, keep DocFilter) ([]DocHit, error) {
	return col.SearchFilteredObs(nil, nil, p, tau, keep)
}

// SearchFilteredTraced is SearchFiltered recording per-stage timings
// ("fanout", "backend_search", "merge") into tr.
func (col *Collection) SearchFilteredTraced(tr *obs.Trace, p []byte, tau float64, keep DocFilter) ([]DocHit, error) {
	return col.SearchFilteredObs(tr, nil, p, tau, keep)
}

// SearchFilteredObs is SearchFiltered recording per-stage timings
// ("fanout", "backend_search", "merge") into tr and resource counters
// (shards touched, backend work, merge comparisons) into c.
func (col *Collection) SearchFilteredObs(tr *obs.Trace, c *obs.Cost, p []byte, tau float64, keep DocFilter) ([]DocHit, error) {
	costed := c != nil
	results, err := col.fanOut(tr, c, func(shard []docIndex, out *shardResult) {
		var st *core.QueryStats
		if costed {
			st = &out.stats
		}
		for _, di := range shard {
			doc, ok := keep.apply(di.doc)
			if !ok {
				continue
			}
			hits, err := di.ix.SearchHitsCosted(p, tau, st)
			if err != nil {
				out.err = err
				return
			}
			for _, h := range hits {
				out.hits = append(out.hits, DocHit{Doc: doc, Pos: int(h.Orig), Prob: h.Prob()})
			}
		}
	})
	if err != nil {
		return nil, err
	}
	stop := tr.StartStage("merge")
	var merged []DocHit
	for _, r := range results {
		merged = append(merged, r.hits...)
	}
	SortHitsObs(c, merged)
	stop()
	return merged, nil
}

// SortHits orders hits by (document, position) — the canonical Search result
// order.
func SortHits(hits []DocHit) {
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Doc != hits[b].Doc {
			return hits[a].Doc < hits[b].Doc
		}
		return hits[a].Pos < hits[b].Pos
	})
}

// SortHitsObs is SortHits counting sort comparisons into c; with a nil c it
// is exactly SortHits (no per-comparison counting on the raw path).
func SortHitsObs(c *obs.Cost, hits []DocHit) {
	if c == nil {
		SortHits(hits)
		return
	}
	var comps int64
	sort.Slice(hits, func(a, b int) bool {
		comps++
		if hits[a].Doc != hits[b].Doc {
			return hits[a].Doc < hits[b].Doc
		}
		return hits[a].Pos < hits[b].Pos
	})
	c.AddMergeComparisons(comps)
}

// Count returns the total number of occurrences of p with probability
// strictly greater than tau, without materialising positions.
func (col *Collection) Count(p []byte, tau float64) (int, error) {
	return col.CountFilteredObs(nil, nil, p, tau, nil)
}

// CountTraced is Count recording per-stage timings into tr.
func (col *Collection) CountTraced(tr *obs.Trace, p []byte, tau float64) (int, error) {
	return col.CountFilteredObs(tr, nil, p, tau, nil)
}

// CountObs is Count recording per-stage timings into tr and resource
// counters into c.
func (col *Collection) CountObs(tr *obs.Trace, c *obs.Cost, p []byte, tau float64) (int, error) {
	return col.CountFilteredObs(tr, c, p, tau, nil)
}

// CountFiltered is Count restricted to the documents kept by keep.
func (col *Collection) CountFiltered(p []byte, tau float64, keep DocFilter) (int, error) {
	return col.CountFilteredObs(nil, nil, p, tau, keep)
}

// CountFilteredTraced is CountFiltered recording per-stage timings into tr.
func (col *Collection) CountFilteredTraced(tr *obs.Trace, p []byte, tau float64, keep DocFilter) (int, error) {
	return col.CountFilteredObs(tr, nil, p, tau, keep)
}

// CountFilteredObs is CountFiltered recording per-stage timings into tr and
// resource counters into c.
func (col *Collection) CountFilteredObs(tr *obs.Trace, c *obs.Cost, p []byte, tau float64, keep DocFilter) (int, error) {
	costed := c != nil
	results, err := col.fanOut(tr, c, func(shard []docIndex, out *shardResult) {
		var st *core.QueryStats
		if costed {
			st = &out.stats
		}
		for _, di := range shard {
			if _, ok := keep.apply(di.doc); !ok {
				continue
			}
			n, err := di.ix.SearchCountCosted(p, tau, st)
			if err != nil {
				out.err = err
				return
			}
			out.count += n
		}
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, r := range results {
		total += r.count
	}
	return total, nil
}

// hitLess is the canonical global ordering of top-k results: decreasing
// probability, ties broken by (document, position). It is a total order on
// distinct occurrences, so every shard count produces the identical hit
// sequence.
func hitLess(a, b DocHit) bool {
	if a.Prob != b.Prob {
		return a.Prob > b.Prob
	}
	if a.Doc != b.Doc {
		return a.Doc < b.Doc
	}
	return a.Pos < b.Pos
}

// topKHeap is a bounded min-heap keeping the k best hits seen so far; the
// root is the currently weakest kept hit. comps counts hitLess evaluations
// for cost attribution (read by MergeTopKObs after the fold).
type topKHeap struct {
	hits  []DocHit
	comps int64
}

func (h *topKHeap) Len() int           { return len(h.hits) }
func (h *topKHeap) Less(a, b int) bool { h.comps++; return hitLess(h.hits[b], h.hits[a]) }
func (h *topKHeap) Swap(a, b int)      { h.hits[a], h.hits[b] = h.hits[b], h.hits[a] }
func (h *topKHeap) Push(x any)         { h.hits = append(h.hits, x.(DocHit)) }
func (h *topKHeap) Pop() any {
	old := h.hits
	n := len(old)
	x := old[n-1]
	h.hits = old[:n-1]
	return x
}

// TopK reports the k globally most probable occurrences of p across all
// documents, in decreasing probability order (ties by document, then
// position). Every per-document index guarantees completeness only down to
// probability TauMin, so fewer than k hits may be returned.
func (col *Collection) TopK(p []byte, k int) ([]DocHit, error) {
	return col.TopKFilteredObs(nil, nil, p, k, nil)
}

// TopKTraced is TopK recording per-stage timings into tr.
func (col *Collection) TopKTraced(tr *obs.Trace, p []byte, k int) ([]DocHit, error) {
	return col.TopKFilteredObs(tr, nil, p, k, nil)
}

// TopKObs is TopK recording per-stage timings into tr and resource counters
// into c.
func (col *Collection) TopKObs(tr *obs.Trace, c *obs.Cost, p []byte, k int) ([]DocHit, error) {
	return col.TopKFilteredObs(tr, c, p, k, nil)
}

// TopKFiltered is TopK restricted to the documents kept by keep, with hits
// renumbered through it. Filtering happens before the merge: every kept
// document contributes its own true top-k, so the merged result is the exact
// global top-k of the kept documents.
func (col *Collection) TopKFiltered(p []byte, k int, keep DocFilter) ([]DocHit, error) {
	return col.TopKFilteredObs(nil, nil, p, k, keep)
}

// TopKFilteredTraced is TopKFiltered recording per-stage timings into tr.
func (col *Collection) TopKFilteredTraced(tr *obs.Trace, p []byte, k int, keep DocFilter) ([]DocHit, error) {
	return col.TopKFilteredObs(tr, nil, p, k, keep)
}

// TopKFilteredObs is TopKFiltered recording per-stage timings into tr and
// resource counters into c.
func (col *Collection) TopKFilteredObs(tr *obs.Trace, c *obs.Cost, p []byte, k int, keep DocFilter) ([]DocHit, error) {
	if k <= 0 {
		return nil, nil
	}
	costed := c != nil
	results, err := col.fanOut(tr, c, func(shard []docIndex, out *shardResult) {
		var st *core.QueryStats
		if costed {
			st = &out.stats
		}
		for _, di := range shard {
			doc, ok := keep.apply(di.doc)
			if !ok {
				continue
			}
			hits, err := di.ix.SearchTopKCosted(p, k, st)
			if err != nil {
				out.err = err
				return
			}
			for _, h := range hits {
				out.hits = append(out.hits, DocHit{Doc: doc, Pos: int(h.Orig), Prob: h.Prob()})
			}
		}
	})
	if err != nil {
		return nil, err
	}
	stop := tr.StartStage("merge")
	lists := make([][]DocHit, len(results))
	for i, r := range results {
		lists[i] = r.hits
	}
	merged := MergeTopKObs(c, k, lists...)
	stop()
	return merged, nil
}

// MergeTopK folds candidate hit lists into the k globally best hits in
// decreasing probability order (ties by document, then position), through a
// bounded min-heap. Each list must already contain the true per-document
// top-k of every document it covers — then the merge is exact. The mutable
// serving layer reuses it to combine base and delta candidates.
func MergeTopK(k int, lists ...[]DocHit) []DocHit {
	return MergeTopKObs(nil, k, lists...)
}

// MergeTopKObs is MergeTopK counting heap comparisons into c (nil records
// nothing).
func MergeTopKObs(c *obs.Cost, k int, lists ...[]DocHit) []DocHit {
	if k <= 0 {
		return nil
	}
	h := topKHeap{hits: make([]DocHit, 0, k+1)}
	for _, list := range lists {
		for _, dh := range list {
			if len(h.hits) < k {
				heap.Push(&h, dh)
				continue
			}
			h.comps++
			if hitLess(dh, h.hits[0]) {
				h.hits[0] = dh
				heap.Fix(&h, 0)
			}
		}
	}
	out := make([]DocHit, len(h.hits))
	for i := len(h.hits) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(DocHit)
	}
	c.AddMergeComparisons(h.comps)
	return out
}

// Validate pre-checks a (pattern, tau) query against the collection's
// construction threshold without touching any shard, returning the same
// sentinel errors a query would: core.ErrEmptyPattern, core.ErrBadPattern,
// core.ErrTauOutOfRange or core.ErrTauBelowTauMin. Servers use it to reject
// malformed requests before paying for the fan-out.
func (col *Collection) Validate(p []byte, tau float64) error {
	return core.ValidateQuery(p, tau, col.tauMin)
}
