package catalog

import (
	"container/heap"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// shardResult carries one shard's hits (or count) back to the merger, plus
// the time the shard spent inside the backend searches. Durations travel
// back through the join rather than into the trace directly, so shard
// goroutines never touch the (unsynchronised) trace.
type shardResult struct {
	hits  []DocHit
	count int
	dur   time.Duration
	err   error
}

// fanOut runs fn once per non-empty shard concurrently and returns the
// per-shard results in shard order. Collections are immutable, so the only
// synchronisation is the join. With a non-nil trace it records two stages:
// "fanout" (wall time of the whole scatter/join) and "backend_search" (the
// sum of per-shard search time, i.e. the work the fan-out parallelised).
func (col *Collection) fanOut(tr *obs.Trace, fn func(shard []docIndex, out *shardResult)) ([]shardResult, error) {
	results := make([]shardResult, len(col.shards))
	begin := time.Time{}
	if tr != nil {
		begin = time.Now()
	}
	var wg sync.WaitGroup
	for s := range col.shards {
		if len(col.shards[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if tr != nil {
				t0 := time.Now()
				fn(col.shards[s], &results[s])
				results[s].dur = time.Since(t0)
				return
			}
			fn(col.shards[s], &results[s])
		}(s)
	}
	wg.Wait()
	if tr != nil {
		tr.Add("fanout", time.Since(begin))
		var busy time.Duration
		for s := range results {
			busy += results[s].dur
		}
		tr.Add("backend_search", busy)
	}
	for s := range results {
		if results[s].err != nil {
			return nil, results[s].err
		}
	}
	return results, nil
}

// DocFilter remaps a collection-local document index to the document number
// reported in hits, or drops the document entirely. Mutable serving layers
// (internal/ingest) use filters to mask tombstoned documents and renumber
// the survivors into a merged base+delta view; because the filter is applied
// per document before any merging, the filtered results are exactly those of
// a collection that never contained the dropped documents.
type DocFilter func(doc int) (mapped int, ok bool)

// apply resolves a document index through the filter; a nil filter keeps
// every document under its own number.
func (f DocFilter) apply(doc int) (int, bool) {
	if f == nil {
		return doc, true
	}
	return f(doc)
}

// Search reports every occurrence of p with probability strictly greater
// than tau in any document, ordered by (document, position). tau must
// satisfy TauMin ≤ tau ≤ 1.
func (col *Collection) Search(p []byte, tau float64) ([]DocHit, error) {
	return col.SearchFilteredTraced(nil, p, tau, nil)
}

// SearchTraced is Search recording per-stage timings into tr (nil tr means
// no recording; the untraced methods delegate here).
func (col *Collection) SearchTraced(tr *obs.Trace, p []byte, tau float64) ([]DocHit, error) {
	return col.SearchFilteredTraced(tr, p, tau, nil)
}

// SearchFiltered is Search restricted to the documents kept by keep, with
// hits renumbered through it.
func (col *Collection) SearchFiltered(p []byte, tau float64, keep DocFilter) ([]DocHit, error) {
	return col.SearchFilteredTraced(nil, p, tau, keep)
}

// SearchFilteredTraced is SearchFiltered recording per-stage timings
// ("fanout", "backend_search", "merge") into tr.
func (col *Collection) SearchFilteredTraced(tr *obs.Trace, p []byte, tau float64, keep DocFilter) ([]DocHit, error) {
	results, err := col.fanOut(tr, func(shard []docIndex, out *shardResult) {
		for _, di := range shard {
			doc, ok := keep.apply(di.doc)
			if !ok {
				continue
			}
			hits, err := di.ix.SearchHits(p, tau)
			if err != nil {
				out.err = err
				return
			}
			for _, h := range hits {
				out.hits = append(out.hits, DocHit{Doc: doc, Pos: int(h.Orig), Prob: h.Prob()})
			}
		}
	})
	if err != nil {
		return nil, err
	}
	stop := tr.StartStage("merge")
	var merged []DocHit
	for _, r := range results {
		merged = append(merged, r.hits...)
	}
	SortHits(merged)
	stop()
	return merged, nil
}

// SortHits orders hits by (document, position) — the canonical Search result
// order.
func SortHits(hits []DocHit) {
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Doc != hits[b].Doc {
			return hits[a].Doc < hits[b].Doc
		}
		return hits[a].Pos < hits[b].Pos
	})
}

// Count returns the total number of occurrences of p with probability
// strictly greater than tau, without materialising positions.
func (col *Collection) Count(p []byte, tau float64) (int, error) {
	return col.CountFilteredTraced(nil, p, tau, nil)
}

// CountTraced is Count recording per-stage timings into tr.
func (col *Collection) CountTraced(tr *obs.Trace, p []byte, tau float64) (int, error) {
	return col.CountFilteredTraced(tr, p, tau, nil)
}

// CountFiltered is Count restricted to the documents kept by keep.
func (col *Collection) CountFiltered(p []byte, tau float64, keep DocFilter) (int, error) {
	return col.CountFilteredTraced(nil, p, tau, keep)
}

// CountFilteredTraced is CountFiltered recording per-stage timings into tr.
func (col *Collection) CountFilteredTraced(tr *obs.Trace, p []byte, tau float64, keep DocFilter) (int, error) {
	results, err := col.fanOut(tr, func(shard []docIndex, out *shardResult) {
		for _, di := range shard {
			if _, ok := keep.apply(di.doc); !ok {
				continue
			}
			n, err := di.ix.SearchCount(p, tau)
			if err != nil {
				out.err = err
				return
			}
			out.count += n
		}
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, r := range results {
		total += r.count
	}
	return total, nil
}

// hitLess is the canonical global ordering of top-k results: decreasing
// probability, ties broken by (document, position). It is a total order on
// distinct occurrences, so every shard count produces the identical hit
// sequence.
func hitLess(a, b DocHit) bool {
	if a.Prob != b.Prob {
		return a.Prob > b.Prob
	}
	if a.Doc != b.Doc {
		return a.Doc < b.Doc
	}
	return a.Pos < b.Pos
}

// topKHeap is a bounded min-heap keeping the k best hits seen so far; the
// root is the currently weakest kept hit.
type topKHeap []DocHit

func (h topKHeap) Len() int           { return len(h) }
func (h topKHeap) Less(a, b int) bool { return hitLess(h[b], h[a]) }
func (h topKHeap) Swap(a, b int)      { h[a], h[b] = h[b], h[a] }
func (h *topKHeap) Push(x any)        { *h = append(*h, x.(DocHit)) }
func (h *topKHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopK reports the k globally most probable occurrences of p across all
// documents, in decreasing probability order (ties by document, then
// position). Every per-document index guarantees completeness only down to
// probability TauMin, so fewer than k hits may be returned.
func (col *Collection) TopK(p []byte, k int) ([]DocHit, error) {
	return col.TopKFilteredTraced(nil, p, k, nil)
}

// TopKTraced is TopK recording per-stage timings into tr.
func (col *Collection) TopKTraced(tr *obs.Trace, p []byte, k int) ([]DocHit, error) {
	return col.TopKFilteredTraced(tr, p, k, nil)
}

// TopKFiltered is TopK restricted to the documents kept by keep, with hits
// renumbered through it. Filtering happens before the merge: every kept
// document contributes its own true top-k, so the merged result is the exact
// global top-k of the kept documents.
func (col *Collection) TopKFiltered(p []byte, k int, keep DocFilter) ([]DocHit, error) {
	return col.TopKFilteredTraced(nil, p, k, keep)
}

// TopKFilteredTraced is TopKFiltered recording per-stage timings into tr.
func (col *Collection) TopKFilteredTraced(tr *obs.Trace, p []byte, k int, keep DocFilter) ([]DocHit, error) {
	if k <= 0 {
		return nil, nil
	}
	results, err := col.fanOut(tr, func(shard []docIndex, out *shardResult) {
		for _, di := range shard {
			doc, ok := keep.apply(di.doc)
			if !ok {
				continue
			}
			hits, err := di.ix.SearchTopK(p, k)
			if err != nil {
				out.err = err
				return
			}
			for _, h := range hits {
				out.hits = append(out.hits, DocHit{Doc: doc, Pos: int(h.Orig), Prob: h.Prob()})
			}
		}
	})
	if err != nil {
		return nil, err
	}
	stop := tr.StartStage("merge")
	lists := make([][]DocHit, len(results))
	for i, r := range results {
		lists[i] = r.hits
	}
	merged := MergeTopK(k, lists...)
	stop()
	return merged, nil
}

// MergeTopK folds candidate hit lists into the k globally best hits in
// decreasing probability order (ties by document, then position), through a
// bounded min-heap. Each list must already contain the true per-document
// top-k of every document it covers — then the merge is exact. The mutable
// serving layer reuses it to combine base and delta candidates.
func MergeTopK(k int, lists ...[]DocHit) []DocHit {
	if k <= 0 {
		return nil
	}
	h := make(topKHeap, 0, k+1)
	for _, list := range lists {
		for _, dh := range list {
			if len(h) < k {
				heap.Push(&h, dh)
				continue
			}
			if hitLess(dh, h[0]) {
				h[0] = dh
				heap.Fix(&h, 0)
			}
		}
	}
	out := make([]DocHit, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(DocHit)
	}
	return out
}

// Validate pre-checks a (pattern, tau) query against the collection's
// construction threshold without touching any shard, returning the same
// sentinel errors a query would: core.ErrEmptyPattern, core.ErrBadPattern,
// core.ErrTauOutOfRange or core.ErrTauBelowTauMin. Servers use it to reject
// malformed requests before paying for the fan-out.
func (col *Collection) Validate(p []byte, tau float64) error {
	return core.ValidateQuery(p, tau, col.tauMin)
}
