package catalog

import (
	"container/heap"
	"sort"
	"sync"

	"repro/internal/core"
)

// shardResult carries one shard's hits (or count) back to the merger.
type shardResult struct {
	hits  []DocHit
	count int
	err   error
}

// fanOut runs fn once per non-empty shard concurrently and returns the
// per-shard results in shard order. Collections are immutable, so the only
// synchronisation is the join.
func (col *Collection) fanOut(fn func(shard []docIndex, out *shardResult)) ([]shardResult, error) {
	results := make([]shardResult, len(col.shards))
	var wg sync.WaitGroup
	for s := range col.shards {
		if len(col.shards[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			fn(col.shards[s], &results[s])
		}(s)
	}
	wg.Wait()
	for s := range results {
		if results[s].err != nil {
			return nil, results[s].err
		}
	}
	return results, nil
}

// Search reports every occurrence of p with probability strictly greater
// than tau in any document, ordered by (document, position). tau must
// satisfy TauMin ≤ tau ≤ 1.
func (col *Collection) Search(p []byte, tau float64) ([]DocHit, error) {
	results, err := col.fanOut(func(shard []docIndex, out *shardResult) {
		for _, di := range shard {
			hits, err := di.ix.SearchHits(p, tau)
			if err != nil {
				out.err = err
				return
			}
			for _, h := range hits {
				out.hits = append(out.hits, DocHit{Doc: di.doc, Pos: int(h.Orig), Prob: h.Prob()})
			}
		}
	})
	if err != nil {
		return nil, err
	}
	var merged []DocHit
	for _, r := range results {
		merged = append(merged, r.hits...)
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].Doc != merged[b].Doc {
			return merged[a].Doc < merged[b].Doc
		}
		return merged[a].Pos < merged[b].Pos
	})
	return merged, nil
}

// Count returns the total number of occurrences of p with probability
// strictly greater than tau, without materialising positions.
func (col *Collection) Count(p []byte, tau float64) (int, error) {
	results, err := col.fanOut(func(shard []docIndex, out *shardResult) {
		for _, di := range shard {
			n, err := di.ix.SearchCount(p, tau)
			if err != nil {
				out.err = err
				return
			}
			out.count += n
		}
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, r := range results {
		total += r.count
	}
	return total, nil
}

// hitLess is the canonical global ordering of top-k results: decreasing
// probability, ties broken by (document, position). It is a total order on
// distinct occurrences, so every shard count produces the identical hit
// sequence.
func hitLess(a, b DocHit) bool {
	if a.Prob != b.Prob {
		return a.Prob > b.Prob
	}
	if a.Doc != b.Doc {
		return a.Doc < b.Doc
	}
	return a.Pos < b.Pos
}

// topKHeap is a bounded min-heap keeping the k best hits seen so far; the
// root is the currently weakest kept hit.
type topKHeap []DocHit

func (h topKHeap) Len() int           { return len(h) }
func (h topKHeap) Less(a, b int) bool { return hitLess(h[b], h[a]) }
func (h topKHeap) Swap(a, b int)      { h[a], h[b] = h[b], h[a] }
func (h *topKHeap) Push(x any)        { *h = append(*h, x.(DocHit)) }
func (h *topKHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopK reports the k globally most probable occurrences of p across all
// documents, in decreasing probability order (ties by document, then
// position). Every per-document index guarantees completeness only down to
// probability TauMin, so fewer than k hits may be returned.
func (col *Collection) TopK(p []byte, k int) ([]DocHit, error) {
	if k <= 0 {
		return nil, nil
	}
	results, err := col.fanOut(func(shard []docIndex, out *shardResult) {
		for _, di := range shard {
			hits, err := di.ix.SearchTopK(p, k)
			if err != nil {
				out.err = err
				return
			}
			for _, h := range hits {
				out.hits = append(out.hits, DocHit{Doc: di.doc, Pos: int(h.Orig), Prob: h.Prob()})
			}
		}
	})
	if err != nil {
		return nil, err
	}
	// Global top-k: a bounded min-heap over the per-shard candidates. Each
	// document contributed its own true top-k, so the global top-k is a
	// subset of the candidates.
	h := make(topKHeap, 0, k+1)
	for _, r := range results {
		for _, dh := range r.hits {
			if len(h) < k {
				heap.Push(&h, dh)
				continue
			}
			if hitLess(dh, h[0]) {
				h[0] = dh
				heap.Fix(&h, 0)
			}
		}
	}
	out := make([]DocHit, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(DocHit)
	}
	return out, nil
}

// Validate pre-checks a (pattern, tau) query against the collection's
// construction threshold without touching any shard, returning the same
// sentinel errors a query would: core.ErrEmptyPattern, core.ErrBadPattern,
// core.ErrTauOutOfRange or core.ErrTauBelowTauMin. Servers use it to reject
// malformed requests before paying for the fan-out.
func (col *Collection) Validate(p []byte, tau float64) error {
	return core.ValidateQuery(p, tau, col.tauMin)
}
