package uncertain_test

import (
	"reflect"
	"sync"
	"testing"

	"repro/uncertain"
)

// TestSharedIndexHammer exercises the documented concurrency guarantee: one
// shared Index queried from many goroutines with a mix of Search,
// SearchHits, SearchTopK, SearchCount and SearchIter must be race-free (run
// with -race) and agree with the serial baseline throughout.
func TestSharedIndexHammer(t *testing.T) {
	s := uncertain.GenerateString(uncertain.GenConfig{N: 4000, Theta: 0.3, Seed: 101})
	ix, err := uncertain.NewIndex(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	pats := [][]byte{}
	for _, m := range []int{2, 3, 5, 9, 14} {
		pats = append(pats, samplePattern(s, m))
	}
	const tau = 0.15

	type baseline struct {
		positions []int
		hits      []uncertain.Hit
		top       []uncertain.Hit
		count     int
	}
	want := make([]baseline, len(pats))
	for i, p := range pats {
		if want[i].positions, err = ix.Search(p, tau); err != nil {
			t.Fatal(err)
		}
		if want[i].hits, err = ix.SearchHits(p, tau); err != nil {
			t.Fatal(err)
		}
		if want[i].top, err = ix.SearchTopK(p, 4); err != nil {
			t.Fatal(err)
		}
		if want[i].count, err = ix.SearchCount(p, tau); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 25; round++ {
				i := (w*3 + round) % len(pats)
				p := pats[i]
				switch round % 5 {
				case 0:
					got, err := ix.Search(p, tau)
					if err != nil || !reflect.DeepEqual(got, want[i].positions) {
						errs <- "Search diverged under concurrency"
						return
					}
				case 1:
					got, err := ix.SearchHits(p, tau)
					if err != nil || !reflect.DeepEqual(got, want[i].hits) {
						errs <- "SearchHits diverged under concurrency"
						return
					}
				case 2:
					got, err := ix.SearchTopK(p, 4)
					if err != nil || !reflect.DeepEqual(got, want[i].top) {
						errs <- "SearchTopK diverged under concurrency"
						return
					}
				case 3:
					got, err := ix.SearchCount(p, tau)
					if err != nil || got != want[i].count {
						errs <- "SearchCount diverged under concurrency"
						return
					}
				default:
					n := 0
					err := ix.SearchIter(p, tau, func(uncertain.Hit) bool { n++; return true })
					if err != nil || n != want[i].count {
						errs <- "SearchIter diverged under concurrency"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// samplePattern draws one length-m pattern from the per-position argmax
// characters around the middle of s, so the workload has real matches.
func samplePattern(s *uncertain.String, m int) []byte {
	start := (s.Len() - m) / 2
	p := make([]byte, m)
	for k := 0; k < m; k++ {
		best := s.Pos[start+k][0]
		for _, c := range s.Pos[start+k] {
			if c.Prob > best.Prob {
				best = c
			}
		}
		p[k] = best.Char
	}
	return p
}
