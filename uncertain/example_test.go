package uncertain_test

import (
	"bytes"
	"fmt"
	"strings"

	"repro/uncertain"
)

// The paper's Figure 5 special uncertain string as a general string:
// (b,.4)(a,.7)(n,.5)(a,.8)(n,.9)(a,.6).
const banana = `b:0.4 x:0.6
a:0.7 x:0.3
n:0.5 x:0.5
a:0.8 x:0.2
n:0.9 x:0.1
a:0.6 x:0.4
`

func ExampleNewIndex() {
	s, err := uncertain.Parse(strings.NewReader(banana))
	if err != nil {
		panic(err)
	}
	ix, err := uncertain.NewIndex(s, 0.1)
	if err != nil {
		panic(err)
	}
	// The paper's Figure 5 query: "ana" above τ = 0.3 matches only at
	// position 3 (probability .8·.9·.6 = .432); position 1 (.7·.5·.8 = .28)
	// falls below.
	positions, err := ix.Search([]byte("ana"), 0.3)
	if err != nil {
		panic(err)
	}
	fmt.Println(positions)
	// Output: [3]
}

func ExampleIndex_SearchHits() {
	s := uncertain.Must(uncertain.Parse(strings.NewReader(banana)))
	ix := uncertain.Must(uncertain.NewIndex(s, 0.1))
	hits := uncertain.Must(ix.SearchHits([]byte("ana"), 0.2))
	for _, h := range hits {
		fmt.Printf("position %d probability %.3f\n", h.Orig, h.Prob())
	}
	// Output:
	// position 3 probability 0.432
	// position 1 probability 0.280
}

func ExampleIndex_SearchTopK() {
	s := uncertain.Must(uncertain.Parse(strings.NewReader(banana)))
	ix := uncertain.Must(uncertain.NewIndex(s, 0.1))
	top := uncertain.Must(ix.SearchTopK([]byte("an"), 1))
	fmt.Printf("best: position %d (%.2f)\n", top[0].Orig, top[0].Prob())
	// Output: best: position 3 (0.72)
}

func ExampleNewCollectionIndex() {
	docs := uncertain.Must(uncertain.ParseCollection(strings.NewReader(
		"A:0.4 B:0.3 F:0.3\nB:0.3 L:0.3 F:0.3 J:0.1\nF:0.5 J:0.5\n" +
			"%\nA:1\nB:1\nF:1\n")))
	cx := uncertain.Must(uncertain.NewCollectionIndex(docs, 0.05))
	// "BF" occurs in doc 0 with max probability .3·.5 = .15 and in doc 1
	// certainly.
	fmt.Println(uncertain.Must(cx.List([]byte("BF"), 0.1)))
	fmt.Println(uncertain.Must(cx.List([]byte("BF"), 0.5)))
	// Output:
	// [0 1]
	// [1]
}

func ExampleFromIUPAC() {
	// R = A or G: the motif "TAG" matches "TARG"[1:] ... at position 1 of
	// "ATRG"? Keep it simple: "AR" → "AA" and "AG" each with probability ½.
	s, err := uncertain.FromIUPAC("ARG")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f\n", s.OccurrenceProb([]byte("AAG"), 0))
	fmt.Printf("%.2f\n", s.OccurrenceProb([]byte("AGG"), 0))
	// Output:
	// 0.50
	// 0.50
}

func ExampleIndex_WriteTo() {
	s := uncertain.Must(uncertain.Parse(strings.NewReader(banana)))
	ix := uncertain.Must(uncertain.NewIndex(s, 0.1))
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		panic(err)
	}
	back := uncertain.Must(uncertain.ReadIndex(&buf))
	fmt.Println(uncertain.Must(back.Search([]byte("ana"), 0.3)))
	// Output: [3]
}

func ExampleNewApproxIndex() {
	s := uncertain.Must(uncertain.Parse(strings.NewReader(banana)))
	ax := uncertain.Must(uncertain.NewApproxIndex(s, 0.1, 0.05))
	// With ε = 0.05 every reported match has true probability > τ − 0.05:
	// position 3 is a true 0.432 match; position 1 (true probability 0.28)
	// is a legitimate within-ε report for τ = 0.3.
	for _, m := range uncertain.Must(ax.Search([]byte("ana"), 0.3)) {
		fmt.Printf("position %d (approx %.3f)\n", m.Pos, m.ApproxProb)
	}
	// Output:
	// position 1 (approx 0.252)
	// position 3 (approx 0.432)
}

func ExampleNewSpecialIndex() {
	// The paper's Figure 5 string: one probabilistic character per position.
	s := &uncertain.SpecialString{
		Chars: []byte("banana"),
		Probs: []float64{0.4, 0.7, 0.5, 0.8, 0.9, 0.6},
	}
	ix := uncertain.Must(uncertain.NewSpecialIndex(s))
	// Any τ works — no construction threshold.
	fmt.Println(uncertain.Must(ix.Search([]byte("ana"), 0.3)))
	fmt.Println(uncertain.Must(ix.Search([]byte("ana"), 0.001)))
	// Output:
	// [3]
	// [1 3]
}

func ExampleSearchOnline() {
	s := uncertain.Must(uncertain.Parse(strings.NewReader(banana)))
	fmt.Println(uncertain.SearchOnline(s, []byte("ana"), 0.2))
	// Output: [1 3]
}
