package uncertain_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/uncertain"
)

func TestEndToEndSubstringSearch(t *testing.T) {
	s := uncertain.Must(uncertain.Parse(strings.NewReader(
		"P:1\nS:0.7 F:0.3\nF:1\nP:1\nQ:0.5 T:0.5\n")))
	ix, err := uncertain.NewIndex(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// SFP at position 1: .7·1·1 = .7.
	got, err := ix.Search([]byte("SFP"), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("Search(SFP, .5) = %v, want [1]", got)
	}
}

func TestEndToEndListing(t *testing.T) {
	docs := uncertain.Must(uncertain.ParseCollection(strings.NewReader(
		"A:0.4 B:0.3 F:0.3\nB:0.3 L:0.3 F:0.3 J:0.1\nF:0.5 J:0.5\n%\nA:1\nB:1\nC:1\n")))
	ix, err := uncertain.NewCollectionIndex(docs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.List([]byte("BF"), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("List(BF, .1) = %v, want [0]", got)
	}
	got, err = ix.List([]byte("AB"), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("List(AB, .5) = %v, want [1]", got)
	}
}

func TestEndToEndApprox(t *testing.T) {
	s := uncertain.GenerateString(uncertain.GenConfig{N: 500, Theta: 0.3, Seed: 7})
	ix, err := uncertain.NewApproxIndex(s, 0.1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := uncertain.NewIndex(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	p := []byte("AA")
	approxGot, err := ix.Search(p, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	exactGot, err := exact.Search(p, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Every exact result appears among the approximate ones.
	set := map[int]bool{}
	for _, m := range approxGot {
		set[m.Pos] = true
	}
	for _, pos := range exactGot {
		if !set[pos] {
			t.Errorf("approx missed exact match at %d", pos)
		}
	}
}

func TestSearchOnlineAgrees(t *testing.T) {
	s := uncertain.GenerateString(uncertain.GenConfig{N: 300, Theta: 0.4, Seed: 11})
	ix := uncertain.Must(uncertain.NewIndex(s, 0.1))
	for _, p := range [][]byte{[]byte("A"), []byte("AC"), []byte("CAT")} {
		a := uncertain.SearchOnline(s, p, 0.2)
		b := uncertain.Must(ix.Search(p, 0.2))
		if len(a) != len(b) {
			t.Fatalf("online %v != indexed %v for %q", a, b, p)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("online %v != indexed %v for %q", a, b, p)
			}
		}
	}
}

func TestRoundTripEncoding(t *testing.T) {
	docs := uncertain.GenerateCollection(uncertain.GenConfig{N: 200, Theta: 0.3, Seed: 13})
	var buf bytes.Buffer
	if err := uncertain.WriteCollection(&buf, docs); err != nil {
		t.Fatal(err)
	}
	back, err := uncertain.ParseCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(docs) {
		t.Fatalf("round trip: %d docs, want %d", len(back), len(docs))
	}
}

func TestDeterministicHelper(t *testing.T) {
	s := uncertain.Deterministic("GATTACA")
	ix := uncertain.Must(uncertain.NewIndex(s, 0.5))
	got := uncertain.Must(ix.Search([]byte("TA"), 0.9))
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("Search(TA) = %v, want [3]", got)
	}
}
