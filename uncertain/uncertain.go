// Package uncertain is the public API of the uncertain-string indexing
// library, a Go reproduction of "Probabilistic Threshold Indexing for
// Uncertain Strings" (Thankachan, Patil, Shah, Biswas; EDBT 2016).
//
// An uncertain string assigns every position a probability distribution over
// characters (the character-level model). The library answers two query
// problems for a deterministic pattern p and probability threshold τ:
//
//   - Substring searching (Index): report every position of one uncertain
//     string where p occurs with probability greater than τ.
//   - String listing (CollectionIndex): report every string of a collection
//     that contains p with probability greater than τ.
//
// Both indexes are built for a construction-time threshold τmin and answer
// queries for any τ ≥ τmin in near-optimal time: O(m + occ) for patterns up
// to log N long, O(m·occ) beyond. An approximate variant (ApproxIndex)
// answers any pattern length in optimal time at the cost of an additive
// error ε in the reported threshold.
//
// # Quick start
//
//	s := uncertain.Must(uncertain.Parse(strings.NewReader(
//		"A:0.5 C:0.5\nT:1\nG:0.9 A:0.1\n")))
//	ix, err := uncertain.NewIndex(s, 0.1)
//	if err != nil { ... }
//	positions, err := ix.Search([]byte("AT"), 0.3)
//
// # Concurrency
//
// Every index type (Index, CollectionIndex, SpecialIndex, ApproxIndex) is
// immutable after construction: all query methods are safe for concurrent
// use by any number of goroutines with no external locking. The serving
// tier (Catalog, cmd/ustridxd) relies on this guarantee to fan queries out
// across shards.
//
// # Serving
//
// Catalog manages many documents behind one query surface: documents are
// spread over shards, each indexed whole, and Search/TopK/Count fan out
// across the shards concurrently and merge the results. cmd/ustridxd serves
// a catalog over HTTP/JSON. The index backend is pluggable per collection
// (CatalogOptions.Backend / Catalog.AddWithBackend / AddWithSpec): the
// plain backend is the paper's structure, the compressed backend answers
// from an FM-index at a several-fold smaller footprint — bit-identically —
// and the approx backend serves the Section 7 ε-index, trading an additive
// error ε for optimal query time at any pattern length (top-k is rejected
// with ErrUnsupportedQuery; backends declare their semantics through
// BackendCapabilities).
//
// # Live ingestion
//
// IngestStore (OpenIngest) adds a write path on top of a catalog: Put and
// Delete mutate collections at runtime, every mutation is appended to a
// write-ahead log before it is acknowledged, queries run against immutable
// generation-stamped snapshots (LiveView) merging the compacted base with a
// delta of recent writes, and a background compactor folds the delta back
// into the base. A collection reached through any mutation history answers
// queries bit-identically to a statically built catalog over the same final
// document set.
//
// # Replication
//
// A mutable store's write-ahead logs double as a replication feed: a
// primary daemon serves them over HTTP, and a Follower (NewFollower) tails
// them into a local read-only IngestStore — bootstrapping from a snapshot,
// resuming from its byte offset after reconnects, and re-bootstrapping when
// the primary compacts a log away. A caught-up follower answers
// Search/TopK/Count bit-identically to its primary. See cmd/ustridxd's
// -follow flag for the packaged replica daemon.
//
// See the examples directory for complete programs modelled on the paper's
// motivating applications (genomics, ECG annotation streams, RFID event
// monitoring).
package uncertain

import (
	"io"
	"time"

	"repro/internal/approx"
	"repro/internal/baseline"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/ingest"
	"repro/internal/listing"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/special"
	"repro/internal/ustring"
)

// String is an uncertain string: a sequence of per-position character
// distributions, optionally with character-level correlations.
type String = ustring.String

// Position is one position's probability distribution.
type Position = ustring.Position

// Choice is one (character, probability) pair of a position.
type Choice = ustring.Choice

// Correlation declares a dependency between two (position, character) pairs.
type Correlation = ustring.Correlation

// World is one possible world of an uncertain string.
type World = ustring.World

// Index answers substring-search queries on a single uncertain string
// (the paper's Problem 1).
type Index = core.Index

// IndexBackend is the pluggable per-document index contract of the serving
// tier: the plain Index, the CompressedIndex and the ApproxBackend all
// satisfy it. The exact backends answer every query bit-identically — only
// memory footprint and query latency differ; the approximate backend
// declares its additive error ε through BackendCapabilities and answers
// under that bound.
type IndexBackend = core.Backend

// CompressedIndex is the space-efficient index backend: suffix ranges from
// an FM-index (wavelet-tree BWT) instead of an explicit suffix array,
// cutting resident memory several-fold at a bounded query-time cost.
type CompressedIndex = core.CompressedIndex

// ApproxBackend serves the Section 7 approximate ε-index through the
// serving tier's backend contract: optimal query time for any pattern
// length, additive error ε, no top-k (rejected with ErrUnsupportedQuery).
type ApproxBackend = core.ApproxBackend

// BackendSpec names a backend kind plus its construction parameters (the
// approx backend's ε); it travels through catalog options, ingest sidecars
// and replication snapshots so every layer rebuilds a collection into the
// identical representation.
type BackendSpec = core.BackendSpec

// BackendCapabilities declares a backend's answer semantics (exact or
// ε-approximate, top-k support); serving layers consult it before
// dispatching an operation.
type BackendCapabilities = core.Capabilities

// ErrUnsupportedQuery reports an operation a backend's semantics cannot
// answer, e.g. top-k on the approximate ε-index. The HTTP tier maps it to
// 422.
var ErrUnsupportedQuery = core.ErrUnsupportedQuery

// Index backend names, as used in CatalogOptions.Backend, the daemon's
// -backend flag, and the PUT backend query parameter.
const (
	BackendPlain      = core.BackendPlain
	BackendCompressed = core.BackendCompressed
	BackendApprox     = core.BackendApprox
)

// DefaultEpsilon is the additive error bound approx backends get when none
// is configured.
const DefaultEpsilon = core.DefaultEpsilon

// Hit is one search result with its probability.
type Hit = core.Hit

// CollectionIndex answers string-listing queries over a collection
// (the paper's Problem 2).
type CollectionIndex = listing.Index

// ListResult is one listed document with its relevance.
type ListResult = listing.Result

// Metric selects the listing relevance function.
type Metric = listing.Metric

// Relevance metrics for CollectionIndex queries.
const (
	RelMax = listing.RelMax
	RelOR  = listing.RelOR
)

// ApproxIndex answers approximate substring-search queries with additive
// error ε in optimal time (the paper's Section 7).
type ApproxIndex = approx.Index

// ApproxMatch is one approximate search result.
type ApproxMatch = approx.Match

// GenConfig configures the synthetic dataset generator that reproduces the
// statistics of the paper's evaluation corpus (Section 8.1).
type GenConfig = gen.Config

// Deterministic builds an uncertain string with a single probability-1
// character per position.
func Deterministic(text string) *String { return ustring.Deterministic(text) }

// FromIUPAC converts a DNA sequence with IUPAC ambiguity codes (R, Y, N, …)
// into an uncertain string over {A,C,G,T}, spreading each code's mass
// uniformly over its base set — the paper's NC-IUB motivation (Section 2).
func FromIUPAC(seq string) (*String, error) { return ustring.FromIUPAC(seq) }

// Parse reads one uncertain string in the text encoding (one position per
// line, "C:prob" pairs separated by spaces, optional @corr directives).
func Parse(r io.Reader) (*String, error) { return ustring.Unmarshal(r) }

// ParseCollection reads a '%'-separated collection.
func ParseCollection(r io.Reader) ([]*String, error) { return ustring.UnmarshalCollection(r) }

// Write renders an uncertain string in the text encoding.
func Write(w io.Writer, s *String) error { return ustring.Marshal(w, s) }

// WriteCollection renders a collection in the text encoding.
func WriteCollection(w io.Writer, docs []*String) error {
	return ustring.MarshalCollection(w, docs)
}

// Must panics on err; it shortens examples and tests.
func Must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// NewIndex builds the substring-search index for thresholds τ ≥ tauMin.
func NewIndex(s *String, tauMin float64) (*Index, error) {
	return core.Build(s, tauMin)
}

// NewCollectionIndex builds the string-listing index for a collection.
func NewCollectionIndex(docs []*String, tauMin float64) (*CollectionIndex, error) {
	return listing.Build(docs, tauMin)
}

// NewApproxIndex builds the approximate index with additive error epsilon.
func NewApproxIndex(s *String, tauMin, epsilon float64) (*ApproxIndex, error) {
	return approx.Build(s, tauMin, epsilon)
}

// SpecialString is a special uncertain string (the paper's Definition 1):
// exactly one probabilistic character per position.
type SpecialString = special.String

// SpecialIndex is the Section 4 index for special uncertain strings. Unlike
// Index it has no construction threshold: any τ ∈ (0, 1] can be queried.
type SpecialIndex = special.Index

// NewSpecialIndex indexes a special uncertain string directly, with no
// Lemma 2 transformation.
func NewSpecialIndex(s *SpecialString) (*SpecialIndex, error) {
	return special.Build(s)
}

// SearchOnline matches p against s without building any index (the Li et
// al.-style dynamic-programming baseline). Prefer NewIndex for repeated
// queries.
func SearchOnline(s *String, p []byte, tau float64) []int {
	return baseline.MatchDP(s, p, tau)
}

// ReadIndex loads an index previously saved with Index.WriteTo. The
// transformation is restored verbatim; the query structures are rebuilt.
// Files holding a different backend are rejected; use ReadIndexBackend to
// load any backend.
func ReadIndex(r io.Reader) (*Index, error) { return core.ReadIndex(r) }

// NewIndexBackend builds the named index backend (BackendPlain,
// BackendCompressed or BackendApprox; empty means plain) for thresholds
// τ ≥ tauMin, with that kind's default parameters. Exact backends answer
// queries bit-identically; the approx backend under DefaultEpsilon.
func NewIndexBackend(kind string, s *String, tauMin float64) (IndexBackend, error) {
	return core.BuildBackend(kind, s, tauMin)
}

// NewApproxBackend builds the approximate serving backend with additive
// error epsilon (0 means DefaultEpsilon) — NewApproxIndex wrapped in the
// serving tier's backend contract.
func NewApproxBackend(s *String, tauMin, epsilon float64) (*ApproxBackend, error) {
	return core.BuildApprox(s, tauMin, epsilon)
}

// ReadIndexBackend loads an index of any backend previously saved with its
// WriteTo, dispatching on the versioned envelope's backend tag.
func ReadIndexBackend(r io.Reader) (IndexBackend, error) { return core.ReadBackend(r) }

// GenerateString synthesises one uncertain string with the paper's corpus
// statistics (protein alphabet, uncertainty fraction cfg.Theta, ~5 choices
// per uncertain position).
func GenerateString(cfg GenConfig) *String { return gen.Single(cfg) }

// GenerateCollection synthesises a collection totalling cfg.N positions.
func GenerateCollection(cfg GenConfig) []*String { return gen.Collection(cfg) }

// Catalog is the sharded multi-document serving tier: named collections of
// uncertain strings, each document indexed whole, queries fanned out across
// shards and merged (see cmd/ustridxd for the HTTP front end).
type Catalog = catalog.Catalog

// Collection is one named sharded document set of a Catalog.
type Collection = catalog.Collection

// CatalogOptions configures catalog construction (threshold, shard count,
// build worker pool).
type CatalogOptions = catalog.Options

// DocHit is one catalog search result: an occurrence within a document.
type DocHit = catalog.DocHit

// NewCatalog returns an empty catalog; add collections with Add.
func NewCatalog(opts CatalogOptions) *Catalog { return catalog.New(opts) }

// OpenCatalog builds a catalog from a directory of '%'-separated collection
// files, one collection per file, named by base name.
func OpenCatalog(dir string, opts CatalogOptions) (*Catalog, error) {
	return catalog.Open(dir, opts)
}

// LoadCatalog restores a catalog previously written with Catalog.Save,
// reusing the persisted per-document transformations.
func LoadCatalog(dir string, opts CatalogOptions) (*Catalog, error) {
	return catalog.Load(dir, opts)
}

// IngestStore is the mutable serving layer: WAL-backed document Put/Delete
// over a catalog, with delta indexes, tombstones and background compaction.
type IngestStore = ingest.Store

// IngestOptions configures an IngestStore (WAL directory, construction
// options, compaction threshold, durability).
type IngestOptions = ingest.Options

// LiveView is one immutable snapshot of a mutable collection; all query
// methods are safe for concurrent use and never block on writers.
type LiveView = ingest.View

// PutResult reports where an acknowledged Put landed.
type PutResult = ingest.PutResult

// OpenIngest builds a mutable store over cat (which may be nil to start
// empty), replaying the WAL directory's checkpoints and logs so every
// previously acknowledged mutation is visible. Close the store to flush and
// release the logs.
func OpenIngest(cat *Catalog, opts IngestOptions) (*IngestStore, error) {
	return ingest.Open(cat, opts)
}

// WALRecord is one logged (and replicated) mutation of an IngestStore.
type WALRecord = ingest.WALRecord

// ReplicaSnapshot is the bootstrap image a primary hands a follower: one
// collection's complete live document set plus the log position it is
// consistent with.
type ReplicaSnapshot = ingest.ReplicaSnapshot

// Follower tails a primary daemon's write-ahead logs into a local
// IngestStore, turning it into a read replica with bit-identical query
// results. Drive it with Run; inspect lag with Status.
type Follower = replica.Follower

// FollowerOptions configures a Follower (primary URL, target store, poll
// cadence).
type FollowerOptions = replica.FollowerOptions

// CollectionLag is one collection's replication state (applied and primary
// offsets, lag, bootstrap count).
type CollectionLag = replica.CollectionLag

// NewFollower validates opts and builds a replication follower; call Run to
// start tailing the primary.
func NewFollower(opts FollowerOptions) (*Follower, error) {
	return replica.NewFollower(opts)
}

// Promotion is one collection's promotion record: the fencing epoch the new
// primary adopted and whether the old primary's feed was fully drained
// first. Follower.Promote returns one per collection.
type Promotion = replica.Promotion

// ErrStaleEpoch is returned (wrapped) by every mutation on a fenced
// IngestStore — one that has seen proof, via IngestStore.FenceIfStale, that
// a replica was promoted over it. Match with errors.Is and re-resolve the
// primary; the store keeps serving reads.
var ErrStaleEpoch = ingest.ErrStaleEpoch

// PromotionEpoch maps a collection's current WAL epoch to the epoch a
// promoted replica adopts: the next promotion generation (high 32 bits),
// clearing the local-checkpoint counter (low 32 bits). The result always
// out-ranks any epoch the demoted primary can reach on its own, so the old
// lineage fences itself on first contact.
func PromotionEpoch(cur uint64) uint64 {
	return replica.PromotionEpoch(cur)
}

// Observability: the obs re-exports let library embedders share one metrics
// registry across the layers they compose (catalog, ingest store, follower)
// and read it back in the Prometheus text exposition, exactly as the
// ustridxd daemon does. Pass a *MetricsRegistry through IngestOptions.Metrics
// and FollowerOptions.Metrics, or into a server Config.

// MetricsRegistry collects counters, gauges and histograms from every layer
// holding it and renders them in the Prometheus text format (0.0.4).
type MetricsRegistry = obs.Registry

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry {
	return obs.NewRegistry()
}

// Trace records one request's per-stage timings as it descends the query
// path; pass it to the *Traced query variants. A nil *Trace is valid and
// records nothing.
type Trace = obs.Trace

// TraceStage is one timed step of a Trace.
type TraceStage = obs.Stage

// SlowLog is a fixed-capacity ring buffer of the slowest recent requests,
// each retained with its stage breakdown.
type SlowLog = obs.SlowLog

// SlowEntry is one retained slow request.
type SlowEntry = obs.SlowEntry

// NewSlowLog builds a slow-query log keeping the most recent capacity
// requests at or above threshold; a non-positive threshold disables it
// (nil is returned, and a nil log records nothing).
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	return obs.NewSlowLog(threshold, capacity)
}

// LintMetrics validates a Prometheus text exposition (as written by
// MetricsRegistry.WritePrometheus), reporting the first malformation.
func LintMetrics(data []byte) error {
	return obs.Lint(data)
}
