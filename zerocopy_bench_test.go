// Zero-copy serving benchmark: heap-decode reopen vs mmap reopen of a
// format-4 compressed-backend catalog cache, across growing corpus sizes.
// TestWriteBench10JSON snapshots the numbers to BENCH_10.json (set
// BENCH10_OUT) and enforces the PR-10 gates at the largest corpus point:
// mmap reopen ≥10× faster than heap reopen, post-start heap retention ≤10%
// of the heap-load figure, and query latency within 1.15× of heap-loaded.
package repro_test

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/ustring"
)

// The reopen workload: compressed collections of fixed-length documents at
// growing document counts. The largest point is where the gates apply —
// small points exist to show the scaling shape, not to be gated (per-file
// constants dominate them).
const (
	bench10DocLen = 1200
	bench10Theta  = 0.3
	bench10TauMin = 0.1
	bench10Tau    = 0.12
	bench10Shards = 4
)

var bench10Points = []int{12, 48, 144}

type bench10Point struct {
	Docs            int   `json:"docs"`
	PositionsPerDoc int   `json:"positions_per_doc"`
	IndexBytes      int   `json:"index_bytes"`
	HeapReopenNs    int64 `json:"heap_reopen_ns"`
	MmapReopenNs    int64 `json:"mmap_reopen_ns"`
	// ReopenSpeedup is heap/mmap: how many times faster the mmap reopen is.
	ReopenSpeedup float64 `json:"reopen_speedup"`
	// PostStart*Bytes is the Go heap retained by the loaded catalog before
	// any query runs — the RSS proxy. The mmap'd regions are file-backed
	// MAP_SHARED pages: reclaimable, shared across processes, and absent
	// from the heap figure by construction; MappedBytes reports them.
	PostStartHeapBytes int64   `json:"post_start_heap_bytes"`
	PostStartMmapBytes int64   `json:"post_start_mmap_bytes"`
	ResidentRatio      float64 `json:"resident_ratio"`
	MappedBytes        int64   `json:"mapped_bytes"`
	HeapQueryNsPerOp   int64   `json:"heap_query_ns_per_op"`
	MmapQueryNsPerOp   int64   `json:"mmap_query_ns_per_op"`
	QueryLatencyRatio  float64 `json:"query_latency_ratio"`
}

type bench10 struct {
	Bench    string `json:"bench"`
	Backend  string `json:"backend"`
	Workload struct {
		PositionsPerDoc int     `json:"positions_per_doc"`
		Theta           float64 `json:"theta"`
		TauMin          float64 `json:"tau_min"`
		Tau             float64 `json:"tau"`
		Shards          int     `json:"shards"`
	} `json:"workload"`
	Points []bench10Point `json:"points"`
	Gates  struct {
		MinReopenSpeedup  float64 `json:"min_reopen_speedup"`
		MaxQueryRatio     float64 `json:"max_query_latency_ratio"`
		MaxResidentRatio  float64 `json:"max_resident_ratio"`
		GatedAtDocs       int     `json:"gated_at_docs"`
		ReopenSpeedup     float64 `json:"reopen_speedup"`
		QueryLatencyRatio float64 `json:"query_latency_ratio"`
		ResidentRatio     float64 `json:"resident_ratio"`
	} `json:"gates"`
}

// bench10Close unmaps/releases every per-document backend of every
// collection, so repeated reopens don't accumulate mappings.
func bench10Close(c *catalog.Catalog) {
	for _, name := range c.Names() {
		col, ok := c.Get(name)
		if !ok {
			continue
		}
		for _, ix := range col.DocIndexes() {
			core.CloseBackend(ix)
		}
	}
}

// bench10Reopen measures the best-of-several wall time of one full catalog
// load from dir. Minimum, not mean: reopen cost is the metric, scheduler
// noise is not.
func bench10Reopen(t *testing.T, dir string, opts catalog.Options) int64 {
	t.Helper()
	best := int64(math.MaxInt64)
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; i < 64 && (i < 3 || time.Now().Before(deadline)); i++ {
		start := time.Now()
		c, err := catalog.Load(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ns := time.Since(start).Nanoseconds(); ns < best {
			best = ns
		}
		bench10Close(c)
	}
	return best
}

// bench10Retained loads the catalog once and reports the Go heap it
// retains before any query touches it, plus the catalog for later use.
func bench10Retained(t *testing.T, dir string, opts catalog.Options) (*catalog.Catalog, int64) {
	t.Helper()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	c, err := catalog.Load(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	retained := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if retained < 1 {
		retained = 1
	}
	return c, retained
}

// bench10Query measures best-of-three Search latency over the collection.
func bench10Query(t *testing.T, col *catalog.Collection, pats [][]byte) int64 {
	t.Helper()
	best := int64(math.MaxInt64)
	for run := 0; run < 3; run++ {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := col.Search(pats[i%len(pats)], bench10Tau); err != nil {
					b.Fatal(err)
				}
			}
		})
		if ns := r.NsPerOp(); ns < best {
			best = ns
		}
	}
	return best
}

// TestWriteBench10JSON measures heap vs mmap reopen across the corpus
// points and writes the snapshot named by BENCH10_OUT (skipped when unset).
// It fails — it is the CI gate, not just a report — when the largest point
// misses any of: reopen speedup ≥10×, post-start heap ≤10%, query latency
// ≤1.15×.
func TestWriteBench10JSON(t *testing.T) {
	out := os.Getenv("BENCH10_OUT")
	if out == "" {
		t.Skip("BENCH10_OUT not set")
	}
	doc := bench10{Bench: "zero-copy serving: heap-decode vs mmap reopen", Backend: core.BackendCompressed}
	doc.Workload.PositionsPerDoc = bench10DocLen
	doc.Workload.Theta = bench10Theta
	doc.Workload.TauMin = bench10TauMin
	doc.Workload.Tau = bench10Tau
	doc.Workload.Shards = bench10Shards
	doc.Gates.MinReopenSpeedup = 10
	doc.Gates.MaxQueryRatio = 1.15
	doc.Gates.MaxResidentRatio = 0.10
	doc.Gates.GatedAtDocs = bench10Points[len(bench10Points)-1]

	opts := catalog.Options{TauMin: bench10TauMin, Shards: bench10Shards, Backend: core.BackendCompressed}
	for _, nDocs := range bench10Points {
		docs := make([]*ustring.String, nDocs)
		for i := range docs {
			docs[i] = gen.Single(gen.Config{
				N: bench10DocLen, Theta: bench10Theta, Seed: int64(7000 + i),
			})
		}
		built := catalog.New(opts)
		col, err := built.Add("bench", docs)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if err := built.Save(dir); err != nil {
			t.Fatal(err)
		}

		heapOpts, mmapOpts := opts, opts
		mmapOpts.MMap = true
		pt := bench10Point{
			Docs:            nDocs,
			PositionsPerDoc: bench10DocLen,
			IndexBytes:      col.IndexBytes(),
		}
		pt.HeapReopenNs = bench10Reopen(t, dir, heapOpts)
		pt.MmapReopenNs = bench10Reopen(t, dir, mmapOpts)
		pt.ReopenSpeedup = float64(pt.HeapReopenNs) / float64(pt.MmapReopenNs)

		heapCat, heapRetained := bench10Retained(t, dir, heapOpts)
		pt.PostStartHeapBytes = heapRetained
		mmapCat, mmapRetained := bench10Retained(t, dir, mmapOpts)
		pt.PostStartMmapBytes = mmapRetained
		pt.ResidentRatio = float64(mmapRetained) / float64(heapRetained)
		pt.MappedBytes = mmapCat.MappedStats().MappedBytes

		pats := gen.CollectionPatterns(docs, 32, 12, 19)
		heapCol, _ := heapCat.Get("bench")
		mmapCol, _ := mmapCat.Get("bench")
		pt.HeapQueryNsPerOp = bench10Query(t, heapCol, pats)
		pt.MmapQueryNsPerOp = bench10Query(t, mmapCol, pats)
		pt.QueryLatencyRatio = float64(pt.MmapQueryNsPerOp) / float64(pt.HeapQueryNsPerOp)

		bench10Close(heapCat)
		bench10Close(mmapCat)
		doc.Points = append(doc.Points, pt)
		t.Logf("docs=%d: reopen heap %v mmap %v (%.1f×), retained heap %d mmap %d (%.3f), query ratio %.3f",
			nDocs, time.Duration(pt.HeapReopenNs), time.Duration(pt.MmapReopenNs), pt.ReopenSpeedup,
			pt.PostStartHeapBytes, pt.PostStartMmapBytes, pt.ResidentRatio, pt.QueryLatencyRatio)
	}

	last := doc.Points[len(doc.Points)-1]
	doc.Gates.ReopenSpeedup = last.ReopenSpeedup
	doc.Gates.QueryLatencyRatio = last.QueryLatencyRatio
	doc.Gates.ResidentRatio = last.ResidentRatio
	if last.ReopenSpeedup < doc.Gates.MinReopenSpeedup {
		t.Errorf("mmap reopen speedup %.2f× at %d docs, gate requires ≥%.0f×",
			last.ReopenSpeedup, last.Docs, doc.Gates.MinReopenSpeedup)
	}
	if last.ResidentRatio > doc.Gates.MaxResidentRatio {
		t.Errorf("post-start mmap heap is %.1f%% of heap-load at %d docs, gate requires ≤%.0f%%",
			last.ResidentRatio*100, last.Docs, doc.Gates.MaxResidentRatio*100)
	}
	if last.QueryLatencyRatio > doc.Gates.MaxQueryRatio {
		t.Errorf("mmap query latency is %.3f× heap at %d docs, gate requires ≤%.2f×",
			last.QueryLatencyRatio, last.Docs, doc.Gates.MaxQueryRatio)
	}

	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}
