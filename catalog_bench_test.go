// Serving-path benchmarks for the sharded catalog: fan-out cost across
// shard counts × pattern lengths, plus the global top-k merge and the count
// path. Future PRs track these series in BENCH_*.json to watch serving
// throughput as the catalog grows.
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/gen"
	"repro/internal/ustring"
)

// catalogBenchState is built once and reused across all serving benchmarks:
// one document set, one catalog per shard count, and per-length pattern
// pools.
type catalogBenchState struct {
	docs  []*ustring.String
	colls map[int]*catalog.Collection // shard count → collection
	pats  map[int][][]byte            // pattern length → patterns
}

var (
	catalogBenchOnce sync.Once
	catalogBench     catalogBenchState
)

func catalogBenchSetup(b *testing.B) *catalogBenchState {
	b.Helper()
	catalogBenchOnce.Do(func() {
		st := &catalogBench
		st.docs = gen.Collection(gen.Config{N: 60_000, Theta: 0.3, Seed: 9})
		st.colls = make(map[int]*catalog.Collection)
		for _, shards := range []int{1, 2, 4, 8} {
			c := catalog.New(catalog.Options{TauMin: 0.1, Shards: shards})
			col, err := c.Add("bench", st.docs)
			if err != nil {
				panic(err)
			}
			st.colls[shards] = col
		}
		st.pats = make(map[int][][]byte)
		for _, m := range []int{4, 8, 16} {
			st.pats[m] = gen.CollectionPatterns(st.docs, 64, m, 15)
		}
	})
	return &catalogBench
}

// BenchmarkCatalogSearch measures threshold-search fan-out across shard
// count × pattern length.
func BenchmarkCatalogSearch(b *testing.B) {
	st := catalogBenchSetup(b)
	for _, shards := range []int{1, 2, 4, 8} {
		for _, m := range []int{4, 8, 16} {
			b.Run(fmt.Sprintf("shards=%d/m=%d", shards, m), func(b *testing.B) {
				col := st.colls[shards]
				pats := st.pats[m]
				hits := 0
				for i := 0; i < b.N; i++ {
					res, err := col.Search(pats[i%len(pats)], 0.15)
					if err != nil {
						b.Fatal(err)
					}
					hits += len(res)
				}
				b.ReportMetric(float64(hits)/float64(b.N), "hits/op")
			})
		}
	}
}

// BenchmarkCatalogTopK measures the global top-k heap merge across shard
// counts at a fixed pattern length.
func BenchmarkCatalogTopK(b *testing.B) {
	st := catalogBenchSetup(b)
	for _, shards := range []int{1, 4} {
		for _, k := range []int{1, 10, 100} {
			b.Run(fmt.Sprintf("shards=%d/k=%d", shards, k), func(b *testing.B) {
				col := st.colls[shards]
				pats := st.pats[4]
				for i := 0; i < b.N; i++ {
					if _, err := col.TopK(pats[i%len(pats)], k); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCatalogCount measures the count path (no hit materialisation)
// across shard counts.
func BenchmarkCatalogCount(b *testing.B) {
	st := catalogBenchSetup(b)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			col := st.colls[shards]
			pats := st.pats[8]
			for i := 0; i < b.N; i++ {
				if _, err := col.Count(pats[i%len(pats)], 0.15); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
